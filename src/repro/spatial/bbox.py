"""Bounding boxes: 2-D rectangles and 3-D (space × time) cubes.

Section 4 stores a bounding box with every ``line``/``region`` root
record and a *bounding cube* with every variable-size unit; these are
the filter geometry for the algorithms of Section 5 and for the R-tree
index package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import InvalidValue
from repro.geometry.primitives import Vec


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in the plane."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self):
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise InvalidValue("malformed rectangle")

    @classmethod
    def around(cls, points: Iterable[Vec]) -> "Rect":
        """The tightest rectangle containing the given points."""
        pts = list(points)
        if not pts:
            raise InvalidValue("bounding box of an empty point collection")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    def intersects(self, other: "Rect") -> bool:
        """True iff the rectangles share at least one point."""
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def contains_point(self, p: Vec) -> bool:
        """True iff the point lies in the closed rectangle."""
        return self.xmin <= p[0] <= self.xmax and self.ymin <= p[1] <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True iff ``other`` lies entirely within this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def union(self, other: "Rect") -> "Rect":
        """The tightest rectangle covering both."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Vec:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)


@dataclass(frozen=True)
class Cube:
    """An axis-aligned box in (x, y, t) space — the *bounding cube* of Section 4.2."""

    xmin: float
    ymin: float
    tmin: float
    xmax: float
    ymax: float
    tmax: float

    def __post_init__(self):
        if self.xmin > self.xmax or self.ymin > self.ymax or self.tmin > self.tmax:
            raise InvalidValue("malformed cube")

    @classmethod
    def from_rect(cls, rect: Rect, tmin: float, tmax: float) -> "Cube":
        """Extrude a 2-D rectangle over a time span."""
        return cls(rect.xmin, rect.ymin, tmin, rect.xmax, rect.ymax, tmax)

    def intersects(self, other: "Cube") -> bool:
        """True iff the cubes share at least one point."""
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
            and self.tmin <= other.tmax
            and other.tmin <= self.tmax
        )

    def contains_cube(self, other: "Cube") -> bool:
        """True iff ``other`` lies entirely within this cube."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.tmin <= other.tmin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
            and other.tmax <= self.tmax
        )

    def union(self, other: "Cube") -> "Cube":
        """The tightest cube covering both."""
        return Cube(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            min(self.tmin, other.tmin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
            max(self.tmax, other.tmax),
        )

    @property
    def volume(self) -> float:
        return (
            (self.xmax - self.xmin)
            * (self.ymax - self.ymin)
            * (self.tmax - self.tmin)
        )

    @property
    def footprint(self) -> Rect:
        """The spatial projection of the cube."""
        return Rect(self.xmin, self.ymin, self.xmax, self.ymax)

    def enlargement(self, other: "Cube") -> float:
        """Volume growth if ``other`` were merged in (R-tree heuristic)."""
        return self.union(other).volume - self.volume
