"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments whose
pip/setuptools cannot build PEP-660 editable wheels (no ``wheel``
package available): without a [build-system] table, pip falls back to
the legacy ``setup.py develop`` editable install, which needs nothing
beyond setuptools itself.
"""

from setuptools import setup

setup()
