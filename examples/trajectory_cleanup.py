#!/usr/bin/env python3
"""GPS track cleanup: simplification under the synchronized distance.

A tracker samples once per second; the sliced representation stores one
upoint unit per sample — wasteful when the vehicle drives straight.
This example simulates a noisy dense track, simplifies it at several
error bounds, and shows the effect on unit counts, storage bytes, and
query results (the answers barely move, the representation shrinks by
an order of magnitude).

Run:  python examples/trajectory_cleanup.py
"""

import math
import random

from repro.ops.simplify import compression_ratio, simplification_error, simplify
from repro.spatial.region import Region
from repro.ops.interaction import mpoint_at_region
from repro.storage.records import pack_value


def simulated_gps_track(seconds: int = 600, seed: int = 11):
    """A drive: long straights, a few turns, per-sample GPS jitter."""
    rng = random.Random(seed)
    heading = 0.0
    speed = 14.0  # m/s
    x = y = 0.0
    waypoints = [(0.0, (0.0, 0.0))]
    for t in range(1, seconds + 1):
        if t % 120 == 0:  # a turn every two minutes
            heading += rng.choice([-1.0, 1.0]) * math.pi / 3
        x += speed * math.cos(heading)
        y += speed * math.sin(heading)
        jitter = (rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0))
        waypoints.append((float(t), (x + jitter[0], y + jitter[1])))
    from repro.temporal.mapping import MovingPoint

    return MovingPoint.from_waypoints(waypoints)


def main() -> None:
    track = simulated_gps_track()
    raw_bytes = pack_value("mpoint", track).total_bytes
    print(
        f"raw track: {len(track)} units, {raw_bytes} B stored, "
        f"trajectory {track.trajectory().length() / 1000:.2f} km"
    )

    zone = Region.box(2000, -3000, 9000, 3000)
    raw_visit = mpoint_at_region(track, zone).deftime().total_length()
    print(f"time inside the zone (raw): {raw_visit:.1f} s\n")

    print(f"{'epsilon':>8}  {'units':>6}  {'bytes':>7}  {'ratio':>6}  "
          f"{'max error':>9}  {'zone time':>9}")
    for eps in (1.0, 3.0, 10.0, 30.0, 100.0):
        slim = simplify(track, eps)
        stored = pack_value("mpoint", slim).total_bytes
        err = simplification_error(track, slim)
        visit = mpoint_at_region(slim, zone).deftime().total_length()
        print(
            f"{eps:8.1f}  {len(slim):6d}  {stored:7d}  "
            f"{compression_ratio(track, slim):5.1f}x  {err:9.2f}  {visit:9.1f}"
        )

    print(
        "\nNote how a 3 m bound (the GPS noise floor) already removes most "
        "units while the zone-visit answer stays within seconds of the raw "
        "track — the synchronized-distance guarantee at work."
    )


if __name__ == "__main__":
    main()
