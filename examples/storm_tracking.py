#!/usr/bin/env python3
"""Storm tracking: moving regions, lifted size/perimeter, and projections.

The paper's forest-fire / weather scenario: storm cells are moving
regions (drifting, growing polygons — valid ``uregion`` motion since
translation plus uniform scaling never rotates an edge).  We ask:

* how does each storm's area evolve (lifted ``size`` → moving real)?
* which road trips got caught in a storm, and for how long (``inside``)?
* what total ground area did a storm traverse (``traversed``)?
* shape morphing between convex radar snapshots (hull interpolation).

Run:  python examples/storm_tracking.py
"""

from repro.ops.inside import inside
from repro.ops.projection import traversed
from repro.temporal.interpolate import collapse_to_point, interpolate_convex
from repro.temporal.mapping import MovingRegion
from repro.workloads.network import RoadNetwork
from repro.workloads.regions import StormGenerator, regular_polygon


def main() -> None:
    gen = StormGenerator(seed=7, sides=10, radius_range=(600.0, 1500.0))
    storms = [gen.storm(phases=5, phase_duration=40.0) for _ in range(3)]
    trips = RoadNetwork(rows=6, cols=6, spacing=1800.0, seed=7).trips(
        8, speed_range=(6.0, 12.0)
    )

    # ----- area over time (lifted size) -------------------------------------
    print("storm area evolution (lifted `size` -> moving real):")
    for i, storm in enumerate(storms):
        area = storm.area()
        t0, t1 = storm.start_time(), storm.end_time()
        samples = ", ".join(
            f"t={t:.0f}: {area.value_at(t).value / 1e6:.2f} km²"
            for t in (t0, (t0 + t1) / 2, t1 - 1e-9)
        )
        print(f"  storm {i}: {samples}")
        print(f"           min {area.minimum() / 1e6:.2f} km², max {area.maximum() / 1e6:.2f} km²")

    # ----- who got caught, and for how long (Section 5.2) --------------------
    print("\ntrips caught inside a storm:")
    any_hit = False
    for s, storm in enumerate(storms):
        for v, trip in enumerate(trips):
            mb = inside(trip, storm)
            hit = mb.when(True)
            if hit:
                any_hit = True
                print(
                    f"  trip {v} in storm {s}: {hit.total_length():.1f} time units "
                    f"across {len(hit)} episode(s): {hit}"
                )
    if not any_hit:
        print("  (none this seed)")

    # ----- traversed ground area ----------------------------------------------
    storm = storms[0]
    footprint = traversed(storm)
    print(
        f"\nstorm 0 traversed {footprint.area() / 1e6:.2f} km² of ground "
        f"({len(footprint.faces)} face(s))"
    )

    # ----- county coverage over time (overlap area) ------------------------------
    from repro.ops.overlap import overlap_fraction
    from repro.spatial.region import Region

    bb = footprint.bbox()
    county = Region.box(bb.xmin, bb.ymin, bb.center[0], bb.center[1])
    coverage = overlap_fraction(storm, county)
    if coverage:
        print(
            f"county coverage by storm 0: peak "
            f"{coverage.maximum() * 100:.1f}% at t={coverage.atmax().initial().time:.0f}"
        )

    # ----- snapshot interpolation (free morph between radar fixes) -------------
    r0 = regular_polygon((0.0, 0.0), 300.0, sides=7)
    r1 = regular_polygon((900.0, 200.0), 500.0, sides=9)
    morph = interpolate_convex(0.0, r0, 60.0, r1)
    mid = morph.value_at(30.0)
    print(
        f"\nconvex-hull morph between radar fixes: area {r0.area():.0f} -> "
        f"{mid.area():.0f} -> {r1.area():.0f}"
    )

    dissipating = collapse_to_point(0.0, r1, 45.0, (900.0, 200.0))
    final = MovingRegion([dissipating])
    print(
        "dissipating cell: area at t=44.9:",
        f"{final.value_at(44.9).area():.1f};",
        "at t=45 (degenerate endpoint):",
        final.value_at(45.0),
    )


if __name__ == "__main__":
    main()
