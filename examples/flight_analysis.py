#!/usr/bin/env python3
"""Flight analysis: the Section-2 example queries on a synthetic fleet.

Creates the paper's ``planes`` relation with mpoint attribute values,
loads a reproducible random-waypoint fleet, and runs

* Query 1 — "all Lufthansa flights longer than 5000 km", and
* Query 2 — "all pairs of planes that came closer than 500 m",

both as SQL text through the library's parser/executor, exactly as the
paper writes them.  Query 2 is then repeated with an R-tree-filtered
join plan to show the index ablation.

Run:  python examples/flight_analysis.py
"""

import time

from repro.db import Database
from repro.db.executor import CrossProduct, IndexFilteredProduct, Select, SeqScan
from repro.db.expressions import And, Call, Column, Compare, Literal
from repro.workloads.trajectories import FlightGenerator


def build_database(num_planes: int = 24) -> Database:
    gen = FlightGenerator(seed=2000)  # SIGMOD 2000
    db = Database("airtraffic")
    planes = db.create_relation(
        "planes", [("airline", "string"), ("id", "string"), ("flight", "mpoint")]
    )
    airlines = ["Lufthansa", "AirFrance", "KLM"]
    for i in range(num_planes):
        airline = airlines[i % len(airlines)]
        flight = gen.flight(legs=6)
        planes.insert([airline, f"{airline[:2].upper()}{i:03d}", flight])
    return db


def main() -> None:
    db = build_database()
    print(f"loaded {len(db.relation('planes'))} flights\n")

    # ----- Query 1 (Section 2) --------------------------------------------
    q1 = (
        "SELECT airline, id FROM planes "
        "WHERE airline = ``Lufthansa'' AND length(trajectory(flight)) > 5000"
    )
    print("Q1:", q1)
    for row in db.query(q1):
        print(f"  {row['airline'].value:<12} {row['id'].value}")

    # ----- Query 2 (Section 2): spatio-temporal join ------------------------
    q2 = (
        "SELECT p.airline, p.id AS pid, q.airline, q.id AS qid "
        "FROM planes p, planes q "
        "WHERE p.id < q.id "
        "AND val(initial(atmin(distance(p.flight, q.flight)))) < 500"
    )
    print("\nQ2:", q2)
    t0 = time.perf_counter()
    rows = db.query(q2)
    nested_secs = time.perf_counter() - t0
    for row in rows:
        print(f"  {row['pid'].value} <-> {row['qid'].value}")
    print(f"  ({len(rows)} pairs, nested loop: {nested_secs * 1000:.1f} ms)")

    # ----- Query 2 with the R-tree-filtered join plan ------------------------
    rel = db.relation("planes")
    where = And(
        Compare("<", Column("p.id"), Column("q.id")),
        Call(
            "ever_closer_than",
            (Column("p.flight"), Column("q.flight"), Literal(500.0)),
        ),
    )
    t0 = time.perf_counter()
    indexed_rows = Select(
        IndexFilteredProduct(
            SeqScan(rel, "p"), SeqScan(rel, "q"), "p.flight", "q.flight", slack=500.0
        ),
        where,
    ).execute()
    indexed_secs = time.perf_counter() - t0
    pairs = sorted((r["p.id"].value, r["q.id"].value) for r in indexed_rows)
    print(f"\nQ2 with R-tree filter: {len(pairs)} pairs, {indexed_secs * 1000:.1f} ms")
    assert len(pairs) == len(rows), "index plan must not change the result"


if __name__ == "__main__":
    main()
