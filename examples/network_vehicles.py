#!/usr/bin/env python3
"""Vehicles on a road network: dense unit sequences, indexing, storage.

Generates a random city grid (networkx), runs a fleet of shortest-path
trips over it, then:

* finds near-miss vehicle pairs (lifted distance + atmin),
* answers a time-slice window query with the per-unit 3-D R-tree and
  verifies it against a linear scan,
* materializes the fleet through the Section-4 tuple storage and reports
  the layout statistics (inline vs paged database arrays).

Run:  python examples/network_vehicles.py
"""

import time

from repro.db import Database
from repro.index.unitindex import MovingObjectIndex
from repro.ops.distance import closest_approach, mpoint_distance
from repro.spatial.bbox import Rect
from repro.workloads.network import RoadNetwork


def main() -> None:
    net = RoadNetwork(rows=8, cols=8, spacing=800.0, seed=13)
    fleet = net.trips(30, speed_range=(8.0, 16.0))
    print(
        f"road network: {net.graph.number_of_nodes()} junctions, "
        f"{net.graph.number_of_edges()} roads; fleet of {len(fleet)} trips, "
        f"{sum(len(t) for t in fleet)} units total"
    )

    # ----- near-miss detection ------------------------------------------------
    print("\nnear misses (closest approach < 50 m):")
    found = 0
    for i in range(len(fleet)):
        for j in range(i + 1, len(fleet)):
            d = mpoint_distance(fleet[i], fleet[j])
            if not d.units:
                continue
            t, dmin = closest_approach(fleet[i], fleet[j])
            if dmin < 50.0:
                found += 1
                print(f"  trips {i:2d}/{j:2d}: {dmin:6.1f} m at t={t:7.1f}")
    print(f"  -> {found} pair(s)")

    # ----- window query: R-tree vs linear scan ----------------------------------
    idx = MovingObjectIndex()
    for k, trip in enumerate(fleet):
        idx.add(k, trip)
    window = Rect(1000.0, 1000.0, 3000.0, 3000.0)
    t0, t1 = 50.0, 250.0

    tic = time.perf_counter()
    candidates = idx.candidates_window(window, t0, t1)
    index_ms = (time.perf_counter() - tic) * 1000

    tic = time.perf_counter()
    exact = set()
    for k, trip in enumerate(fleet):
        for step in range(101):
            t = t0 + (t1 - t0) * step / 100.0
            p = trip.value_at(t)
            if p is not None and window.contains_point(p.vec):
                exact.add(k)
                break
    scan_ms = (time.perf_counter() - tic) * 1000

    assert exact <= candidates, "index must never miss a true hit"
    print(
        f"\nwindow query {window} in [{t0}, {t1}]: "
        f"{len(exact)} true hits, {len(candidates)} index candidates "
        f"({idx.unit_entries} unit cubes; index {index_ms:.2f} ms, "
        f"sampled scan {scan_ms:.2f} ms)"
    )

    # ----- storage layout statistics ----------------------------------------------
    db = Database("traffic")
    rel = db.create_relation(
        "trips",
        [("vehicle", "string"), ("trip", "mpoint")],
        materialized=True,
        inline_threshold=256,
    )
    for k, trip in enumerate(fleet):
        rel.insert([f"car-{k:03d}", trip])
    stats = rel.storage_stats()
    print(
        f"\nmaterialized through the DBMS layout: {stats['tuples']} tuples, "
        f"{stats['tuple_bytes']} B in tuples; database arrays "
        f"{stats['inline_arrays']} inline / {stats['external_arrays']} paged; "
        f"buffer pool {stats['hits']} hits / {stats['misses']} misses"
    )

    rows = db.query(
        "SELECT vehicle, length(trajectory(trip)) AS dist FROM trips LIMIT 5"
    )
    print("\nfirst trips by SQL:")
    for r in rows:
        print(f"  {r['vehicle'].value}: {r['dist']:.0f} m")


if __name__ == "__main__":
    main()
