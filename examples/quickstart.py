#!/usr/bin/env python3
"""Quickstart: the moving objects data model in five minutes.

Builds a moving point and a moving region, evaluates them over time,
runs the two algorithms of Section 5 (atinstant, inside), computes a
lifted distance, and round-trips a value through the Section-4 storage
layout.

Run:  python examples/quickstart.py
"""

from repro import MovingPoint, MovingRegion, Region, URegion
from repro.ops import inside, mregion_atinstant
from repro.ops.distance import closest_approach, mpoint_distance
from repro.storage.records import pack_value, unpack_value


def main() -> None:
    # -- a moving point from time-stamped waypoints ------------------------
    taxi = MovingPoint.from_waypoints(
        [(0.0, (0.0, 0.0)), (10.0, (8.0, 0.0)), (25.0, (8.0, 12.0))]
    )
    print("taxi:", taxi)
    print("  position at t=5:   ", taxi.value_at(5.0))
    print("  position at t=17.5:", taxi.value_at(17.5))
    print("  defined times:     ", taxi.deftime())
    print("  trajectory length: ", f"{taxi.trajectory().length():.2f}")

    # -- a moving region: a storm cell drifting east ------------------------
    storm = MovingRegion(
        [
            URegion.between_regions(
                0.0,
                Region.polygon([(2, 4), (8, 4), (8, 10), (2, 10)]),
                25.0,
                Region.polygon([(10, 4), (16, 4), (16, 10), (10, 10)]),
            )
        ]
    )
    snapshot = mregion_atinstant(storm, 12.5)  # the Section 5.1 algorithm
    print("\nstorm at t=12.5:", snapshot, f"area={snapshot.area():.1f}")

    # -- when was the taxi caught in the storm? (Section 5.2) ---------------
    caught = inside(taxi, storm)
    print("\ninside(taxi, storm):")
    for unit in caught.units:
        print(f"  {unit.interval.pretty():>22}  ->  {bool(unit.value.value)}")
    print("  caught during:", caught.when(True))

    # -- lifted distance between two moving points --------------------------
    bus = MovingPoint.from_waypoints([(0.0, (10.0, 10.0)), (25.0, (0.0, 2.0))])
    dist = mpoint_distance(taxi, bus)
    t_min, d_min = closest_approach(taxi, bus)
    print(f"\nclosest approach taxi/bus: d={d_min:.2f} at t={t_min:.2f}")
    print(f"  distance at t=0:  {dist.value_at(0.0).value:.2f}")
    print(f"  distance at t=25: {dist.value_at(25.0).value:.2f}")

    # -- DBMS storage layout (Section 4) -------------------------------------
    stored = pack_value("mpoint", taxi)
    print(
        f"\nstorage: root record {len(stored.root)} B + "
        f"{len(stored.arrays)} database array(s), {stored.total_bytes} B total"
    )
    assert unpack_value(stored) == taxi
    print("  round-trip through the root-record/array layout: OK")


if __name__ == "__main__":
    main()
