#!/usr/bin/env python3
"""Regenerate the paper's value-space figures as SVG images.

Writes into ``figures/``:

* ``figure2_line.svg``   — a line value: polyline parts plus loose segments;
* ``figure3_region.svg`` — a region with holes and an island in a hole;
* ``figure4_uline.svg``  — film strip of a moving line (drifting segments);
* ``figure6_uregion.svg``— film strip of a moving region degenerating to a
  point at its final instant (the Figure-6 cone);
* ``storm_track.svg``    — a workload storm with a vehicle trajectory.

Run:  python examples/render_figures.py
"""

import math
import os

from repro.io.svg import render_film_strip, render_values
from repro.ranges.interval import Interval
from repro.spatial.line import Line
from repro.spatial.region import Region
from repro.temporal.interpolate import collapse_to_point
from repro.temporal.mapping import MovingLine, MovingRegion
from repro.temporal.uline import ULine
from repro.workloads.network import RoadNetwork
from repro.workloads.regions import StormGenerator, regular_polygon


def main() -> None:
    os.makedirs("figures", exist_ok=True)

    # Figure 2: a line value is just a set of segments.
    curvy = Line.polyline([(0, 0), (2, 1.5), (4, 1), (6, 2.5), (8, 2)])
    loose = Line([((1, 3), (3, 4)), ((5, 3.2), (6.5, 4.2)), ((2, 4.5), (2.5, 3.2))])
    _write("figures/figure2_line.svg", render_values([curvy, loose]))

    # Figure 3: region with two holes and an island inside a hole.
    def ring(cx, cy, r, n=10):
        return [
            (cx + r * math.cos(2 * math.pi * k / n),
             cy + r * math.sin(2 * math.pi * k / n))
            for k in range(n)
        ]
    big = Region.polygon(ring(0, 0, 10), holes=[ring(-3, 0, 2), ring(4, 0, 3)])
    island = Region.polygon(ring(4, 0, 1))
    second = Region.polygon(ring(16, 2, 4))
    _write(
        "figures/figure3_region.svg",
        render_values([big, island, second]),
    )

    # Figure 4: a uline of drifting segments, shown as a film strip.
    l0 = Line([((0, 0), (2, 1)), ((1, 3), (3, 3)), ((4, 1), (5, 2.5))])
    l1 = Line([((6, 2), (8, 3)), ((7, 5), (9, 5)), ((10, 3), (11, 4.5))])
    ml = MovingLine([ULine.between_lines(0.0, l0, 10.0, l1)])
    _write("figures/figure4_uline.svg", _line_strip(ml))

    # Figure 6: a region collapsing to its apex (endpoint degeneracy).
    cone = collapse_to_point(0.0, regular_polygon((0, 0), 8, 7), 10.0, (12.0, 2.0))
    _write(
        "figures/figure6_uregion.svg",
        render_film_strip(MovingRegion([cone]), frames=5),
    )

    # A workload scene: storm cell + vehicle trajectory.
    storm = StormGenerator(seed=4, radius_range=(800.0, 1500.0)).storm(phases=4)
    trip = RoadNetwork(rows=5, cols=5, spacing=2000.0, seed=4).random_trip()
    mid = storm.value_at(storm.start_time() + 80.0)
    _write(
        "figures/storm_track.svg",
        render_values([mid, trip.trajectory()]),
    )
    print("figures written to figures/")


def _line_strip(ml: MovingLine) -> str:
    """Film strip for a moving line (overlaid snapshots)."""
    from repro.io.svg import SvgCanvas, _world_of, _PALETTE

    t0, t1 = ml.start_time(), ml.end_time()
    times = [t0 + (t1 - t0) * k / 4 for k in range(5)]
    snaps = [(t, ml.value_at(t)) for t in times]
    world = _world_of([v for _t, v in snaps if v is not None])
    canvas = SvgCanvas(world, width=720, height=400)
    for i, (t, v) in enumerate(snaps):
        if v is None:
            continue
        canvas.add_line(v, _PALETTE[i % len(_PALETTE)])
    return canvas.to_svg()


def _write(path: str, svg: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(svg)
    print(f"  {path}")


if __name__ == "__main__":
    main()
