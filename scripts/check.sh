#!/usr/bin/env bash
# Tier-1 verification: the full test suite plus a fast operation-counter
# smoke of the Section-5.1 benchmark (asserts the O(log n) probe claim
# by exact count, no wall-clock flakiness, no pytest-benchmark flags).
#
# Usage: scripts/check.sh  (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: test suite =="
python -m pytest -x -q

echo
echo "== dynlock witness: full suite with the lock-order graph armed =="
# REPRO_DYNLOCK=1 swaps every dynlock.rlock() site for an instrumented
# lock; any lock-order inversion witnessed anywhere in the suite raises
# LockOrderError at the offending acquire (see repro.analysis.dynlock).
REPRO_DYNLOCK=1 python -m pytest -x -q -p no:cacheprovider

echo
echo "== tier-1: counter-assertion smoke (benchmarks, -k counter) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_alg_atinstant.py -k counter

echo
echo "== parallel-backend smoke (2 workers, tiny fleet, equivalence) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_parallel.py -k smoke

echo
echo "== column-store cold-start smoke (populated store, no rebuild) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_colstore.py -k smoke

echo
echo "== query-service smoke (start -> ingest -> query -> shutdown) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_server.py -k smoke

echo
echo "== sharded-backend smoke (2 shards, tiny budget, equivalence) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_shard.py -k smoke
python -m pytest -q -p no:cacheprovider tests/test_shard.py -k smoke

echo
echo "== repro-lint (stdlib AST checker, always on) =="
python -m repro.analysis src

echo
echo "== repro-lint: concurrency & durability family (MOD007-MOD010) =="
# Redundant with the full run above, but kept as an explicit gate so a
# future rule-selection change can never silently drop the family.
python -m repro.analysis --select MOD007,MOD008,MOD009,MOD010 src

echo
echo "== crash-matrix smoke (every registered failpoint, fixed seed) =="
python -m repro crash-matrix --seed 2000

echo
echo "== chaos-matrix smoke (live faults: drops, stalls, kills, dups) =="
python -m repro chaos-matrix --quick --seed 2026

echo
echo "== lint (ruff, skipped when not installed) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks
else
    echo "ruff not installed; skipping lint"
fi

echo
echo "== types (mypy --strict on the gated packages, skipped when not installed) =="
if command -v mypy >/dev/null 2>&1; then
    mypy --strict -p repro.temporal -p repro.ranges -p repro.geometry -p repro.vector
else
    echo "mypy not installed; skipping type check"
fi

echo
echo "check.sh: all green"
