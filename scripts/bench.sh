#!/usr/bin/env bash
# Scalar-vs-vector benchmarks: runs the repro.vector fleet kernels
# against their scalar reference loops (equivalence asserted in the same
# run) and writes the timings to BENCH_vector.json in the repo root.
#
# Usage: scripts/bench.sh [fleet_size]  (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

OBJECTS="${1:-10000}"

echo "== vector backend: pytest assertions (equivalence + speedup) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_vector.py

echo
echo "== vector backend: timings -> BENCH_vector.json =="
python benchmarks/bench_vector.py --objects "$OBJECTS" --json BENCH_vector.json

echo
echo "bench.sh: done"
