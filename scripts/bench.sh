#!/usr/bin/env bash
# Scalar-vs-vector benchmarks: runs the repro.vector fleet kernels
# against their scalar reference loops (equivalence asserted in the same
# run) and writes the timings to BENCH_vector.json in the repo root.
# Also measures crash-safe storage (WAL overhead, recovery replay,
# disarmed-failpoint scans) into BENCH_storage.json, and the parallel
# backend (shared-memory chunked pool vs single-process, column cache,
# STR bulk loading) into BENCH_parallel.json, and the persistent column
# store (cold mmap open vs warm vs the killed rebuild path) into
# BENCH_colstore.json, and the always-on query service (sustained qps
# under concurrent WAL-durable ingest at 4 workers, p50/p99) into
# BENCH_server.json, and the sharded backend (cold budgeted window
# query scaling 100k -> 1M objects, evictions + resident high-water
# counter-asserted) into BENCH_shard.json.
#
# Usage: scripts/bench.sh [fleet_size]  (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

OBJECTS="${1:-10000}"

echo "== vector backend: pytest assertions (equivalence + speedup) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_vector.py

echo
echo "== vector backend: timings -> BENCH_vector.json =="
python benchmarks/bench_vector.py --objects "$OBJECTS" --json BENCH_vector.json

echo
echo "== crash-safe storage: pytest assertions (recovery equivalence) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_storage_faults.py

echo
echo "== crash-safe storage: timings -> BENCH_storage.json =="
python benchmarks/bench_storage_faults.py --json BENCH_storage.json

echo
echo "== parallel backend: pytest assertions (equivalence + speedups) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_parallel.py

echo
echo "== parallel backend: timings -> BENCH_parallel.json =="
python benchmarks/bench_parallel.py --objects "$OBJECTS" --json BENCH_parallel.json

echo
echo "== column store: pytest assertions (cold-start counters + parity) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_colstore.py

echo
echo "== column store: cold/warm trajectory -> BENCH_colstore.json =="
python benchmarks/bench_colstore.py --objects "$OBJECTS" --json BENCH_colstore.json

echo
echo "== query service: pytest assertions (lifecycle + concurrent ingest) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_server.py

echo
echo "== query service: sustained qps under ingest -> BENCH_server.json =="
python benchmarks/bench_server.py --json BENCH_server.json

echo
echo "== sharded backend: pytest assertions (budget + equivalence) =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_shard.py

echo
echo "== sharded backend: cold budgeted scaling -> BENCH_shard.json =="
python benchmarks/bench_shard.py --json BENCH_shard.json

echo
echo "== buffer pool: CLOCK hit rates on looping / hot-cold scans =="
python -m pytest -q -p no:cacheprovider benchmarks/bench_buffer.py
python benchmarks/bench_buffer.py

echo
echo "bench.sh: done"
