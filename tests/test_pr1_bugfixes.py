"""Regression tests for the PR-1 kernel bugfixes.

* ``crossings_above`` now applies one eps-consistent half-open rule, so
  near-vertical segments and query points within EPSILON of a vertex get
  a stable crossing parity;
* ``UReal.eval``/``_iota`` clamp a negative sqrt radicand only within
  rounding tolerance of zero and raise ``InvalidValue`` beyond it;
* ``Mapping.at_periods`` is a linear merge-scan that must agree exactly
  with the old nested loop;
* ``Mapping.unit_at`` at open/closed boundaries between adjacent units;
* ``RTree3D._split`` leaves both groups at or above the minimum fill.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EPSILON
from repro.errors import InvalidValue
from repro.geometry.plumbline import crossings_above, point_in_segset
from repro.geometry.segment import make_seg
from repro.index.rtree import RTree3D, _Node
from repro.ranges.interval import Interval
from repro.ranges.rangeset import RangeSet
from repro.spatial.bbox import Cube
from repro.temporal.mapping import MovingReal
from repro.temporal.ureal import UReal


def polygon_segs(pts):
    """Close a vertex list into its boundary segments."""
    return [
        make_seg(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts))
    ]


class TestPlumblineEpsConsistency:
    def test_near_vertical_segment_below_polygon(self):
        """A point under a near-vertical edge must stay outside.

        The old exact ``x0 == x1`` test let a segment with x-extent
        1e-12 through to the interpolation, whose ~0 denominator turned
        the height test into noise and produced a bogus crossing.
        """
        square = polygon_segs(
            [(0.0, 0.0), (10.0, 0.0), (10.0 + 1e-12, 10.0), (0.0, 10.0)]
        )
        assert not point_in_segset((10.0, -5.0), square)
        assert crossings_above((10.0, -5.0), square) == 0
        # The polygon itself still works.
        assert point_in_segset((5.0, 5.0), square)
        assert not point_in_segset((11.0, 5.0), square)

    def test_parity_stable_within_epsilon_of_vertex(self):
        """Query x within EPSILON of a vertex x: exactly one incident
        segment is counted, never zero or two."""
        diamond = polygon_segs(
            [(0.0, 0.0), (5.0, -5.0), (10.0, 0.0), (5.0, 5.0)]
        )
        for k in range(-8, 9):
            x = 5.0 + k * EPSILON / 4.0
            assert point_in_segset((x, 0.0), diamond), f"x={x!r}"
            assert not point_in_segset((x, 6.0), diamond), f"x={x!r}"
            assert not point_in_segset((x, -6.0), diamond), f"x={x!r}"

    def test_parity_stable_under_vertex_perturbation(self):
        """Perturbing polygon vertices by sub-eps noise must not flip
        the classification of points well away from the boundary."""
        rng = random.Random(71)
        base = [
            (
                5.0 + 4.0 * math.cos(2 * math.pi * k / 12),
                5.0 + 4.0 * math.sin(2 * math.pi * k / 12),
            )
            for k in range(12)
        ]
        inside_pts = [(5.0, 5.0), (6.5, 5.0), (5.0, 3.5), (4.0, 6.0)]
        outside_pts = [(0.0, 0.0), (5.0, 9.9), (9.9, 5.0), (-1.0, 5.0)]
        for _ in range(25):
            noisy = [
                (
                    x + rng.uniform(-EPSILON / 3, EPSILON / 3),
                    y + rng.uniform(-EPSILON / 3, EPSILON / 3),
                )
                for x, y in base
            ]
            segs = polygon_segs(noisy)
            for p in inside_pts:
                assert point_in_segset(p, segs), f"{p} flipped outside"
            for p in outside_pts:
                assert not point_in_segset(p, segs), f"{p} flipped inside"

    def test_unnormalized_segment_orientation(self):
        """Right-to-left segment tuples count the same as normalized."""
        seg_lr = [((0.0, 5.0), (10.0, 5.0))]
        seg_rl = [((10.0, 5.0), (0.0, 5.0))]
        p = (4.0, 0.0)
        assert crossings_above(p, seg_lr) == crossings_above(p, seg_rl) == 1


class TestURealRadicand:
    def test_valid_sqrt_unit_evaluates_on_interval(self):
        # radicand (t - 0.5)^2: nonnegative, touching zero at t = 0.5.
        u = UReal(Interval(0.0, 1.0), 1.0, -1.0, 0.25, r=True)
        assert u.eval(0.5) == 0.0
        assert u.eval(0.0) == pytest.approx(0.5)
        assert u.eval(1.0) == pytest.approx(0.5)

    def test_tiny_negative_radicand_clamps_to_zero(self):
        u = UReal(Interval(0.0, 1.0), 0.0, 1.0, 0.0, r=True)  # sqrt(t)
        assert u.eval(-1e-12) == 0.0
        assert u._iota(-1e-12).value == 0.0

    def test_genuinely_negative_radicand_raises(self):
        u = UReal(Interval(0.0, 1.0), 0.0, 1.0, 0.0, r=True)  # sqrt(t)
        with pytest.raises(InvalidValue):
            u.eval(-1.0)
        with pytest.raises(InvalidValue):
            u._iota(-1.0)

    def test_tolerance_scales_with_coefficients(self):
        # radicand 1e6 * t: at t = -1e-9 the radicand is -1e-3 in
        # absolute terms but within rounding tolerance of the
        # coefficient scale, so it clamps rather than raises.
        u = UReal(Interval(0.0, 1.0), 0.0, 1e6, 0.0, r=True)
        assert u.eval(-1e-9) == 0.0
        with pytest.raises(InvalidValue):
            u.eval(-1.0)

    def test_value_at_still_none_outside_interval(self):
        u = UReal(Interval(0.0, 1.0), 0.0, 1.0, 0.0, r=True)
        assert u.value_at(-1.0) is None


def stepped_mreal(n: int, t0: float = 0.0, gap: float = 0.0) -> MovingReal:
    units = []
    t = t0
    for k in range(n):
        units.append(
            UReal.constant(Interval(t, t + 1.0, True, True), float(k))
        )
        t += 1.0 + gap
    return MovingReal(units, validate=False)


class TestAtPeriodsEquivalence:
    def brute_force(self, m: MovingReal, periods) -> MovingReal:
        out = []
        for u in m.units:
            for iv in periods:
                piece = u.restricted(iv)
                if piece is not None:
                    out.append(piece)
        return MovingReal(out, validate=False)

    def test_matches_nested_loop_with_boundary_cases(self):
        m = stepped_mreal(6, gap=0.5)  # units [0,1], [1.5,2.5], ...
        periods = RangeSet(
            [
                Interval(0.25, 1.5, True, False),  # spans a gap, open end
                Interval(2.5, 2.5, True, True),  # degenerate instant
                Interval(3.0, 5.9, False, True),  # open start mid-unit
                Interval(100.0, 101.0, True, True),  # beyond the deftime
            ]
        )
        assert m.at_periods(periods) == self.brute_force(m, periods)

    def test_matches_nested_loop_randomized(self):
        rng = random.Random(2000)
        for _ in range(40):
            n = rng.randint(1, 12)
            m = stepped_mreal(n, t0=rng.uniform(-5, 5), gap=rng.random())
            ivs = []
            t = rng.uniform(-8.0, 0.0)
            for _k in range(rng.randint(1, 10)):
                t += rng.random() * 2 + 1e-3
                e = t + rng.random() * 2
                lc, rc = rng.random() < 0.5, rng.random() < 0.5
                if t == e:
                    lc = rc = True
                ivs.append(Interval(t, e, lc, rc))
                t = e + 1e-3
            periods = RangeSet.normalized(ivs)
            assert m.at_periods(periods) == self.brute_force(m, periods)

    def test_empty_operands(self):
        m = stepped_mreal(3)
        assert len(m.at_periods(RangeSet([]))) == 0
        assert len(MovingReal([]).at_periods(RangeSet([Interval(0, 1)]))) == 0


class TestUnitAtBoundaries:
    def test_closed_start_takes_the_instant_from_open_end(self):
        a = UReal.constant(Interval(0.0, 1.0, True, False), 1.0)
        b = UReal.constant(Interval(1.0, 2.0, True, True), 2.0)
        m = MovingReal([a, b])
        assert m.unit_at(1.0) is m.units[1]
        assert m.unit_at(1.0 - 1e-9) is m.units[0]
        assert m.unit_at(2.0) is m.units[1]
        assert m.unit_at(2.0 + 1e-9) is None

    def test_closed_end_takes_the_instant_from_open_start(self):
        a = UReal.constant(Interval(0.0, 1.0, True, True), 1.0)
        b = UReal.constant(Interval(1.0, 2.0, False, True), 2.0)
        m = MovingReal([a, b])
        # The successor starts at 1.0 but is open there: the instant
        # belongs to the predecessor (the bisect idx-2 probe).
        assert m.unit_at(1.0) is m.units[0]
        assert m.unit_at(1.0 + 1e-9) is m.units[1]

    def test_instant_gap_between_open_ends(self):
        a = UReal.constant(Interval(0.0, 1.0, True, False), 1.0)
        b = UReal.constant(Interval(1.0, 2.0, False, True), 1.0)
        m = MovingReal([a, b])  # {1.0} is undefined: not adjacent units
        assert m.unit_at(1.0) is None
        assert not m.present(1.0)

    def test_degenerate_unit_at_the_seam(self):
        a = UReal.constant(Interval(0.0, 1.0, True, False), 1.0)
        mid = UReal.constant(Interval(1.0, 1.0, True, True), 5.0)
        b = UReal.constant(Interval(1.0, 2.0, False, True), 2.0)
        m = MovingReal([a, mid, b])
        assert m.unit_at(1.0) is m.units[1]
        assert m.value_at(1.0).value == 5.0


cube_strategy = st.builds(
    lambda x, y, t, dx, dy, dt: Cube(x, y, t, x + dx, y + dy, t + dt),
    st.floats(-100, 100),
    st.floats(-100, 100),
    st.floats(0, 100),
    st.floats(0, 20),
    st.floats(0, 20),
    st.floats(0, 5),
)


class TestRTreeSplitMinimumFill:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(cube_strategy, min_size=20, max_size=64),
        st.sampled_from([4, 6, 8]),
    )
    def test_every_node_respects_fill_bounds(self, cubes, fanout):
        tree = RTree3D(max_entries=fanout)
        for i, c in enumerate(cubes):
            tree.insert(c, i)
        stack = [(tree._root, True)]
        while stack:
            node, is_root = stack.pop()
            assert len(node.entries) <= tree._max
            if not is_root:
                assert len(node.entries) >= tree._min
            if not node.leaf:
                stack.extend((child, False) for _c, child in node.entries)
        universe = Cube(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9)
        assert sorted(tree.search_list(universe)) == list(range(len(cubes)))

    @settings(max_examples=30, deadline=None)
    @given(st.data(), st.sampled_from([4, 6, 8, 12]))
    def test_split_directly_fills_both_groups(self, data, fanout):
        tree = RTree3D(max_entries=fanout)
        overflow = data.draw(
            st.lists(
                cube_strategy, min_size=fanout + 1, max_size=fanout + 1
            )
        )
        node = _Node(leaf=True)
        node.entries = [(c, i) for i, c in enumerate(overflow)]
        sibling = tree._split(node)
        assert len(node.entries) >= tree._min
        assert len(sibling.entries) >= tree._min
        assert len(node.entries) + len(sibling.entries) == fanout + 1
        merged = sorted(i for _c, i in node.entries + sibling.entries)
        assert merged == list(range(fanout + 1))
