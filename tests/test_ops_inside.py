"""Tests for the Section 5.2 inside algorithm."""

import pytest

from repro.base.values import BoolVal
from repro.ranges.interval import Interval, closed
from repro.ranges.rangeset import RangeSet
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.temporal.uconst import ConstUnit
from repro.temporal.upoint import UPoint
from repro.temporal.uregion import URegion
from repro.ops.inside import inside, upoint_uregion_inside


def stationary_region(x0, y0, x1, y1, t0=0.0, t1=100.0):
    return MovingRegion(
        [URegion.stationary(closed(t0, t1), Region.box(x0, y0, x1, y1))]
    )


class TestUnitLevel:
    def test_pass_through(self):
        up = UPoint.between(0.0, (-5, 2), 10.0, (15, 2))
        ur = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        values = [(u.interval.s, u.interval.e, bool(u.value.value)) for u in units]
        assert values == [
            (0.0, 2.5, False),
            (2.5, 4.5, True),
            (4.5, 10.0, False),
        ]

    def test_true_pieces_closed_false_pieces_open(self):
        up = UPoint.between(0.0, (-5, 2), 10.0, (15, 2))
        ur = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        # At the crossing instant the point is on the boundary → inside.
        middle = units[1]
        assert middle.interval.lc and middle.interval.rc
        assert not units[0].interval.rc
        assert not units[2].interval.lc

    def test_never_inside(self):
        up = UPoint.between(0.0, (0, 10), 10.0, (10, 10))
        ur = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        assert len(units) == 1 and units[0].value == BoolVal(False)

    def test_always_inside(self):
        up = UPoint.between(0.0, (1, 1), 10.0, (3, 3))
        ur = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        assert len(units) == 1 and units[0].value == BoolVal(True)

    def test_far_apart_bbox_shortcut_reports_false(self):
        up = UPoint.between(0.0, (100, 100), 10.0, (110, 100))
        ur = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        assert len(units) == 1 and units[0].value == BoolVal(False)

    def test_disjoint_time_intervals(self):
        up = UPoint.between(0.0, (0, 0), 1.0, (1, 0))
        ur = URegion.stationary(closed(5.0, 6.0), Region.box(0, 0, 4, 4))
        assert upoint_uregion_inside(up, ur) == []

    def test_enter_only(self):
        up = UPoint.between(0.0, (-5, 2), 10.0, (2, 2))
        ur = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        assert [bool(u.value.value) for u in units] == [False, True]

    def test_point_in_hole(self):
        holed = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        # Travels through the hole: inside, outside (hole), inside.
        up = UPoint.between(0.0, (1, 5), 10.0, (9, 5))
        ur = URegion.stationary(closed(0.0, 10.0), holed)
        units = upoint_uregion_inside(up, ur)
        assert [bool(u.value.value) for u in units] == [True, False, True]

    def test_moving_region_crossing(self):
        # Region moves right over a stationary point.
        r0, r1 = Region.box(10, 0, 14, 4), Region.box(-14, 0, -10, 4)
        ur = URegion.between_regions(0.0, r0, 10.0, r1)
        up = UPoint.stationary(closed(0.0, 10.0), (0, 2))
        units = upoint_uregion_inside(up, ur)
        assert [bool(u.value.value) for u in units] == [False, True, False]

    def test_degenerate_instant_interval(self):
        up = UPoint.stationary(Interval(5.0, 5.0), (2, 2))
        ur = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        assert len(units) == 1
        assert units[0].interval.is_degenerate
        assert units[0].value == BoolVal(True)

    def test_vertex_grazing_falls_back_to_sampling(self):
        # The point passes exactly through the corner (4, 4): a vertex
        # hit touches two boundary segments at once.
        up = UPoint.between(0.0, (3, 5), 10.0, (5, 3))
        ur = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        # Inside only at the touch instant or never properly inside;
        # whatever the slicing, it must never report a long inside piece.
        true_time = sum(
            u.interval.length for u in units if bool(u.value.value)
        )
        assert true_time == pytest.approx(0.0, abs=1e-6)


class TestMappingLevel:
    def test_multi_unit_point(self):
        mp = MovingPoint.from_waypoints(
            [(0, (-5, 2)), (10, (15, 2)), (20, (-5, 2))]
        )
        mr = stationary_region(0, 0, 4, 4, 0.0, 20.0)
        mb = inside(mp, mr)
        on = mb.when(True)
        assert len(on) == 2
        assert on.total_length() == pytest.approx(4.0)

    def test_result_defined_only_on_common_time(self):
        mp = MovingPoint.from_waypoints([(0, (1, 1)), (10, (1, 1.5))])
        mr = stationary_region(0, 0, 4, 4, 5.0, 20.0)
        mb = inside(mp, mr)
        assert mb.deftime() == RangeSet([closed(5.0, 10.0)])

    def test_concat_merges_across_refinement(self):
        # Point sits inside; region is described by two distinct adjacent
        # units (different extents), so the refinement partition cuts at
        # t=5 — yet the resulting bool units merge back into one.
        mr = MovingRegion(
            [
                URegion.stationary(
                    Interval(0.0, 5.0, True, False), Region.box(0, 0, 4, 4)
                ),
                URegion.stationary(closed(5.0, 10.0), Region.box(0, 0, 5, 5)),
            ]
        )
        mp = MovingPoint.from_waypoints([(0, (1, 1)), (10, (2, 2))])
        mb = inside(mp, mr)
        assert len(mb) == 1  # merged into a single true unit
        assert mb.when(True).total_length() == pytest.approx(10.0)

    def test_empty_inputs(self):
        assert inside(MovingPoint([]), MovingRegion([])).units == ()
