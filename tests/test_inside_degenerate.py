"""Adversarial configurations for the Section-5.2 inside algorithm."""

import pytest

from repro.base.values import BoolVal
from repro.ranges.interval import closed
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.temporal.upoint import UPoint
from repro.temporal.uregion import URegion
from repro.ops.inside import inside, upoint_uregion_inside


def stationary(region, t0=0.0, t1=10.0):
    return URegion.stationary(closed(t0, t1), region)


class TestBoundaryRiding:
    def test_point_rides_along_edge(self):
        # Moves exactly along the bottom edge: region values include
        # their boundary, so inside is true throughout.
        up = UPoint.between(0.0, (0.0, 0.0), 10.0, (4.0, 0.0))
        ur = stationary(Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        true_time = sum(
            u.interval.length for u in units if bool(u.value.value)
        )
        assert true_time == pytest.approx(10.0)

    def test_point_rides_outside_carrier(self):
        # Moves along the carrier line of an edge but beyond the region.
        up = UPoint.between(0.0, (6.0, 0.0), 10.0, (16.0, 0.0))
        ur = stationary(Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        assert all(not bool(u.value.value) for u in units)


class TestVertexConfigurations:
    def test_corner_graze(self):
        # Passes exactly through the corner (4, 4), never entering.
        up = UPoint.between(0.0, (3.0, 5.0), 10.0, (5.0, 3.0))
        ur = stationary(Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        true_time = sum(
            u.interval.length for u in units if bool(u.value.value)
        )
        assert true_time == pytest.approx(0.0, abs=1e-6)

    def test_diagonal_through_corner_into_region(self):
        # Enters exactly through a corner along the diagonal.
        up = UPoint.between(0.0, (-2.0, -2.0), 10.0, (2.0, 2.0))
        ur = stationary(Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        # Inside from t=5 (corner) onward.
        true_time = sum(
            u.interval.length for u in units if bool(u.value.value)
        )
        assert true_time == pytest.approx(5.0, abs=1e-3)

    def test_exit_through_corner(self):
        up = UPoint.between(0.0, (2.0, 2.0), 10.0, (6.0, 6.0))
        ur = stationary(Region.box(0, 0, 4, 4))
        units = upoint_uregion_inside(up, ur)
        true_time = sum(
            u.interval.length for u in units if bool(u.value.value)
        )
        assert true_time == pytest.approx(5.0, abs=1e-3)


class TestMovingHoles:
    def moving_donut(self):
        r0 = Region.polygon(
            [(0, 0), (12, 0), (12, 12), (0, 12)],
            holes=[[(4, 4), (8, 4), (8, 8), (4, 8)]],
        )
        r1 = Region.polygon(
            [(10, 0), (22, 0), (22, 12), (10, 12)],
            holes=[[(14, 4), (18, 4), (18, 8), (14, 8)]],
        )
        return MovingRegion([URegion.between_regions(0.0, r0, 10.0, r1)])

    def test_stationary_point_sees_hole_pass_over(self):
        # Point at (11, 6): starts inside the solid part, the hole
        # passes over it, then solid again... compute expectations:
        # hole spans x in [4+t, 8+t]; contains 11 for t in [3, 7].
        # outer spans x in [0+t, 12+t]; contains 11 for t in [0, 10] (t<=11).
        mp = MovingPoint.from_waypoints([(0.0, (11.0, 6.0)), (10.0, (11.0, 6.0))])
        mb = inside(mp, self.moving_donut())
        on = mb.when(True)
        off = mb.when(False)
        assert on.total_length() == pytest.approx(10.0 - 4.0, abs=1e-6)
        # The hole interior excludes the point during (3, 7).
        assert off.contains(5.0)
        assert on.contains(1.0) and on.contains(9.0)

    def test_point_crossing_hole(self):
        mp = MovingPoint.from_waypoints([(0.0, (0.5, 6.0)), (10.0, (20.5, 6.0))])
        mb = inside(mp, self.moving_donut())
        # Relative to the region the point moves 1 unit/time while the
        # region moves 1 as well... verify against dense sampling.
        donut = self.moving_donut()
        for k in range(101):
            t = 10.0 * k / 100.0
            got = mb.value_at(t)
            if got is None:
                continue
            p = mp.value_at(t)
            r = donut.value_at(t)
            if p is None or r is None:
                continue
            # Skip instants within tolerance of boundary contact.
            expected = r.contains_point(p.vec)
            boundary = any(
                abs(p.x - xb) < 1e-6
                for xb in (0 + t, 4 + t, 8 + t, 12 + t)
            )
            if not boundary:
                assert bool(got.value) == expected, f"t={t}"


class TestMultiUnitEdgeCases:
    def test_point_defined_only_at_single_instants(self):
        from repro.ranges.interval import Interval

        mp = MovingPoint(
            [
                UPoint.stationary(Interval(2.0, 2.0), (1.0, 1.0)),
                UPoint.stationary(Interval(5.0, 5.0), (100.0, 100.0)),
            ]
        )
        mr = MovingRegion([stationary(Region.box(0, 0, 4, 4))])
        mb = inside(mp, mr)
        assert mb.value_at(2.0) == BoolVal(True)
        assert mb.value_at(5.0) == BoolVal(False)
        assert mb.value_at(3.0) is None

    def test_region_with_many_faces(self):
        faces = Region(
            [
                f
                for k in range(5)
                for f in Region.box(k * 10.0, 0.0, k * 10.0 + 4.0, 4.0).faces
            ]
        )
        mp = MovingPoint.from_waypoints([(0.0, (-2.0, 2.0)), (50.0, (48.0, 2.0))])
        mr = MovingRegion([stationary(faces, 0.0, 50.0)])
        mb = inside(mp, mr)
        assert len(mb.when(True)) == 5
        assert mb.when(True).total_length() == pytest.approx(20.0, abs=1e-6)
