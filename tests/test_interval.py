"""Tests for intervals (Section 3.2.3): the disjoint/adjacent predicates."""

import pytest

from repro.errors import InvalidValue
from repro.ranges.interval import Interval, closed, interval_at, open_interval


class TestConstruction:
    def test_closed(self):
        iv = closed(1.0, 2.0)
        assert iv.lc and iv.rc

    def test_open(self):
        iv = open_interval(1.0, 2.0)
        assert not iv.lc and not iv.rc

    def test_degenerate_must_be_closed(self):
        interval_at(1.0)  # fine
        with pytest.raises(InvalidValue):
            Interval(1.0, 1.0, True, False)

    def test_start_must_not_exceed_end(self):
        with pytest.raises(InvalidValue):
            Interval(2.0, 1.0)

    def test_is_degenerate(self):
        assert interval_at(1.0).is_degenerate
        assert not closed(1.0, 2.0).is_degenerate


class TestMembership:
    def test_contains_closed(self):
        iv = closed(1.0, 2.0)
        assert iv.contains(1.0) and iv.contains(2.0) and iv.contains(1.5)
        assert not iv.contains(0.999) and not iv.contains(2.001)

    def test_contains_open(self):
        iv = open_interval(1.0, 2.0)
        assert not iv.contains(1.0) and not iv.contains(2.0)
        assert iv.contains(1.5)

    def test_contains_open_part(self):
        iv = closed(1.0, 3.0)
        assert iv.contains_open(2.0)
        assert not iv.contains_open(1.0)
        assert not iv.contains_open(3.0)

    def test_contains_open_degenerate(self):
        assert interval_at(1.0).contains_open(1.0)

    def test_contains_interval(self):
        big = closed(0.0, 10.0)
        assert big.contains_interval(closed(1.0, 2.0))
        assert big.contains_interval(big)
        assert not big.contains_interval(closed(5.0, 11.0))

    def test_contains_interval_closure(self):
        half = Interval(0.0, 10.0, False, True)
        assert not half.contains_interval(closed(0.0, 1.0))
        assert half.contains_interval(open_interval(0.0, 1.0))


class TestDisjointAdjacent:
    """The paper's r-disjoint / disjoint / r-adjacent / adjacent, verbatim."""

    def test_separated_are_disjoint(self):
        assert closed(0.0, 1.0).disjoint(closed(2.0, 3.0))

    def test_overlap_not_disjoint(self):
        assert not closed(0.0, 2.0).disjoint(closed(1.0, 3.0))

    def test_touching_closed_closed_not_disjoint(self):
        # Both contain the touch point.
        assert not closed(0.0, 1.0).disjoint(closed(1.0, 2.0))

    def test_touching_closed_open_disjoint(self):
        a = closed(0.0, 1.0)
        b = Interval(1.0, 2.0, False, True)
        assert a.disjoint(b)

    def test_touching_closed_open_adjacent(self):
        a = closed(0.0, 1.0)
        b = Interval(1.0, 2.0, False, True)
        assert a.adjacent(b)
        assert b.adjacent(a)  # symmetric

    def test_touching_open_open_not_adjacent(self):
        # Neither contains the touch point: a gap of one point remains.
        a = Interval(0.0, 1.0, True, False)
        b = Interval(1.0, 2.0, False, True)
        assert a.disjoint(b)
        assert not a.adjacent(b)

    def test_discrete_domain_adjacency(self):
        # [1,3] and [4,6] over int: no integer strictly between 3 and 4.
        a = Interval(1, 3)
        b = Interval(4, 6)
        assert a.disjoint(b)
        assert a.adjacent(b)

    def test_discrete_domain_gap(self):
        a = Interval(1, 3)
        b = Interval(5, 6)
        assert a.disjoint(b)
        assert not a.adjacent(b)

    def test_dense_domain_numeric_gap_not_adjacent(self):
        assert not closed(0.0, 1.0).adjacent(closed(1.5, 2.0))

    def test_overlapping_not_adjacent(self):
        assert not closed(0.0, 2.0).adjacent(closed(1.0, 3.0))

    def test_r_disjoint_orientation(self):
        a, b = closed(0.0, 1.0), closed(2.0, 3.0)
        assert a.r_disjoint(b)
        assert not b.r_disjoint(a)


class TestIntersection:
    def test_overlap(self):
        got = closed(0.0, 2.0).intersection(closed(1.0, 3.0))
        assert got == closed(1.0, 2.0)

    def test_disjoint_returns_none(self):
        assert closed(0.0, 1.0).intersection(closed(2.0, 3.0)) is None

    def test_single_point(self):
        got = closed(0.0, 1.0).intersection(closed(1.0, 2.0))
        assert got == interval_at(1.0)

    def test_closure_flags_conjoin(self):
        a = Interval(0.0, 2.0, True, False)
        b = Interval(0.0, 2.0, False, True)
        got = a.intersection(b)
        assert got == open_interval(0.0, 2.0)

    def test_nested(self):
        assert closed(0.0, 10.0).intersection(closed(3.0, 4.0)) == closed(3.0, 4.0)


class TestMerge:
    def test_merge_overlap(self):
        assert closed(0.0, 2.0).merge(closed(1.0, 3.0)) == closed(0.0, 3.0)

    def test_merge_adjacent(self):
        a = closed(0.0, 1.0)
        b = Interval(1.0, 2.0, False, True)
        assert a.merge(b) == closed(0.0, 2.0)

    def test_merge_gap_raises(self):
        with pytest.raises(InvalidValue):
            closed(0.0, 1.0).merge(closed(2.0, 3.0))

    def test_closure_flags_disjoin(self):
        a = Interval(0.0, 2.0, False, False)
        b = Interval(0.0, 2.0, True, True)
        assert a.merge(b) == closed(0.0, 2.0)


class TestNumericHelpers:
    def test_length(self):
        assert closed(1.0, 4.0).length == 3.0

    def test_midpoint(self):
        assert closed(1.0, 3.0).midpoint() == 2.0

    def test_sample_inside_open(self):
        iv = open_interval(1.0, 2.0)
        assert iv.contains(iv.sample_inside())

    def test_sample_inside_degenerate(self):
        assert interval_at(5.0).sample_inside() == 5.0

    def test_pretty(self):
        assert Interval(1.0, 2.0, True, False).pretty() == "[1, 2)"
