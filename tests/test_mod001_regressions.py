"""Regression tests for the genuine MOD001/eps-discipline findings.

Each test pins one bug surfaced by ``repro-lint``'s MOD001 rule: a raw
float comparison on coordinates/instants that misclassified values
within an ulp-to-eps neighbourhood of a boundary.  The inputs here sit
inside that neighbourhood, so each test fails against the pre-lint code.
"""

from repro.geometry.mergesegs import merge_segs
from repro.ops.distance import mpoint_line_distance
from repro.ops.motion import heading, turning_points
from repro.ops.window import upoint_within_rect_times
from repro.ranges.interval import Interval
from repro.spatial.bbox import Rect
from repro.spatial.line import Line
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint


class TestWindowEpsDrift:
    def test_stationary_point_within_eps_of_window_edge_counts(self):
        # x = -1e-10 is outside [0, 1] by less than EPSILON: the exact
        # comparison dropped the unit entirely; the eps-mediated bound
        # keeps it for its whole interval with inherited closures.
        u = UPoint.between(0.0, (-1e-10, 0.5), 10.0, (-1e-10, 0.5))
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        iv = upoint_within_rect_times(u, rect)
        assert iv == Interval(0.0, 10.0, True, True)

    def test_point_beyond_eps_of_window_edge_still_excluded(self):
        u = UPoint.between(0.0, (-1e-6, 0.5), 10.0, (-1e-6, 0.5))
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert upoint_within_rect_times(u, rect) is None


class TestDistanceSliverCut:
    def test_projection_crossing_within_eps_of_start_adds_no_sliver(self):
        # The projection parameter crosses 0 at t = 1e-12 — inside the
        # unit interval but within eps of its start.  The exact interior
        # test cut there, producing a sliver unit of width 1e-12; the
        # eps-mediated test does not.
        mp = MovingPoint.from_waypoints(
            [(0.0, (-1e-12, 1.0)), (10.0, (10.0 - 1e-12, 1.0))]
        )
        line = Line([((0.0, 0.0), (10.0, 0.0))])
        d = mpoint_line_distance(mp, line)
        assert len(d.units) == 1
        assert d.units[0].interval == Interval(0.0, 10.0, True, True)


class TestMotionEps:
    def test_sub_eps_velocity_has_no_heading(self):
        # Net displacement 1e-9 over 10 time units: velocity 1e-10 per
        # axis is rounding noise, not a direction.
        mp = MovingPoint.from_waypoints([(0.0, (0.0, 0.0)), (10.0, (1e-9, 0.0))])
        assert not heading(mp).units

    def test_genuine_velocity_keeps_heading(self):
        mp = MovingPoint.from_waypoints([(0.0, (0.0, 0.0)), (10.0, (10.0, 0.0))])
        assert len(heading(mp).units) == 1

    def test_sub_eps_direction_change_is_not_a_turn(self):
        # Consecutive velocities (1, 1) and (1, 1 + 1e-10): the cross
        # product 1e-10 is below EPSILON, so no turning point.
        mp = MovingPoint.from_waypoints(
            [(0.0, (0.0, 0.0)), (1.0, (1.0, 1.0)), (2.0, (2.0, 2.0 + 1e-10))]
        )
        assert turning_points(mp) == []

    def test_genuine_direction_change_is_a_turn(self):
        mp = MovingPoint.from_waypoints(
            [(0.0, (0.0, 0.0)), (1.0, (1.0, 1.0)), (2.0, (2.0, 0.0))]
        )
        assert turning_points(mp) == [1.0]


class TestMergeSegsCarrierScaling:
    def test_long_carrier_preserves_genuine_gap(self):
        # On a length-1000 carrier the old fixed parameter tolerance of
        # 1e-9 equalled a 1e-6 *real-space* gap, silently bridging it.
        # The carrier-scaled tolerance keeps the two segments apart.
        segs = [
            ((0.0, 0.0), (1000.0, 0.0)),
            ((1000.000001, 0.0), (2000.0, 0.0)),
        ]
        merged = merge_segs(segs)
        assert len(merged) == 2

    def test_truly_adjacent_segments_still_merge(self):
        segs = [
            ((0.0, 0.0), (1000.0, 0.0)),
            ((1000.0, 0.0), (2000.0, 0.0)),
        ]
        merged = merge_segs(segs)
        assert len(merged) == 1
        assert merged[0] == ((0.0, 0.0), (2000.0, 0.0))
