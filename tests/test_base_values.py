"""Tests for the base types (Section 3.2.1): int, real, string, bool with ⊥."""

import pytest

from repro.base.values import (
    FALSE,
    MAX_STRING,
    TRUE,
    BoolVal,
    IntVal,
    RealVal,
    StringVal,
    wrap,
)
from repro.errors import TypeMismatch, UndefinedValue


class TestDefinedValues:
    def test_int_holds_value(self):
        assert IntVal(42).value == 42

    def test_real_holds_value(self):
        assert RealVal(3.5).value == 3.5

    def test_real_coerces_int(self):
        v = RealVal(3)
        assert v.value == 3.0
        assert isinstance(v.value, float)

    def test_string_holds_value(self):
        assert StringVal("hello").value == "hello"

    def test_bool_holds_value(self):
        assert BoolVal(True).value is True

    def test_defined_flag(self):
        assert IntVal(0).defined
        assert RealVal(0.0).defined
        assert StringVal("").defined
        assert BoolVal(False).defined


class TestUndefined:
    def test_default_is_undefined(self):
        for cls in (IntVal, RealVal, StringVal, BoolVal):
            assert not cls().defined

    def test_value_raises_on_undefined(self):
        with pytest.raises(UndefinedValue):
            IntVal().value

    def test_value_or_default(self):
        assert IntVal().value_or(7) == 7
        assert IntVal(3).value_or(7) == 3

    def test_undefined_sorts_first(self):
        assert IntVal() < IntVal(-(10**9))
        assert RealVal() < RealVal(float("-inf"))

    def test_undefined_equals_undefined(self):
        assert IntVal() == IntVal()

    def test_repr_marks_bottom(self):
        assert "⊥" in repr(IntVal())


class TestTypeDiscipline:
    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatch):
            IntVal(True)

    def test_int_rejects_float(self):
        with pytest.raises(TypeMismatch):
            IntVal(3.5)

    def test_bool_rejects_int(self):
        with pytest.raises(TypeMismatch):
            BoolVal(1)

    def test_string_rejects_number(self):
        with pytest.raises(TypeMismatch):
            StringVal(42)

    def test_string_length_bound(self):
        StringVal("x" * MAX_STRING)  # at the limit: fine
        with pytest.raises(TypeMismatch):
            StringVal("x" * (MAX_STRING + 1))

    def test_cross_type_equality_not_implemented(self):
        assert IntVal(1) != RealVal(1.0)


class TestOrderingAndHashing:
    def test_total_order(self):
        assert IntVal(1) < IntVal(2)
        assert IntVal(2) <= IntVal(2)
        assert IntVal(3) > IntVal(2)
        assert IntVal(3) >= IntVal(3)

    def test_string_order(self):
        assert StringVal("abc") < StringVal("abd")

    def test_hashable(self):
        s = {IntVal(1), IntVal(1), IntVal(2), IntVal()}
        assert len(s) == 3

    def test_immutable(self):
        v = IntVal(5)
        with pytest.raises(AttributeError):
            v._value = 6


class TestWrap:
    def test_wrap_dispatch(self):
        assert isinstance(wrap(True), BoolVal)
        assert isinstance(wrap(3), IntVal)
        assert isinstance(wrap(2.5), RealVal)
        assert isinstance(wrap("s"), StringVal)

    def test_wrap_passthrough(self):
        v = IntVal(1)
        assert wrap(v) is v

    def test_wrap_rejects_other(self):
        with pytest.raises(TypeMismatch):
            wrap([1, 2])

    def test_singletons(self):
        assert TRUE.value is True
        assert FALSE.value is False

    def test_bool_truthiness(self):
        assert bool(BoolVal(True))
        assert not bool(BoolVal(False))
