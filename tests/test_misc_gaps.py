"""Coverage for smaller API surfaces: int range sets, map_units, config."""

import pytest

from repro.config import feq, fge, fgt, fle, flt, fsign, fzero
from repro.errors import InvalidValue
from repro.ranges.interval import Interval
from repro.ranges.rangeset import RangeSet
from repro.temporal.mapping import MovingInt
from repro.temporal.uconst import ConstUnit
from repro.base.values import IntVal


class TestIntRangeSets:
    def test_discrete_adjacency_rejected_in_canonical_form(self):
        # [1,3] and [4,6] over int are adjacent (no integer between):
        # the canonical representation must merge them.
        with pytest.raises(InvalidValue):
            RangeSet([Interval(1, 3), Interval(4, 6)])

    def test_normalized_merges_discrete_neighbours(self):
        rs = RangeSet.normalized([Interval(1, 3), Interval(4, 6)])
        assert list(rs) == [Interval(1, 6)]

    def test_gap_of_two_stays_split(self):
        rs = RangeSet([Interval(1, 3), Interval(5, 6)])
        assert len(rs) == 2
        assert not rs.contains(4)

    def test_int_set_operations(self):
        a = RangeSet([Interval(0, 10)])
        b = RangeSet([Interval(4, 6)])
        diff = a.difference(b)
        assert diff.contains(3) and not diff.contains(5) and diff.contains(7)


class TestMappingMapUnits:
    def test_map_units_collects_non_none(self):
        m = MovingInt(
            [
                ConstUnit(Interval(0.0, 1.0, True, False), IntVal(1)),
                ConstUnit(Interval(1.0, 2.0, True, True), IntVal(2)),
            ]
        )
        odd = m.map_units(
            lambda u: u if u.value.value % 2 == 1 else None
        )
        assert len(odd) == 1
        assert odd[0].value == IntVal(1)


class TestConfigHelpers:
    def test_comparisons(self):
        assert feq(1.0, 1.0 + 1e-12)
        assert not feq(1.0, 1.001)
        assert fle(1.0, 1.0)
        assert flt(1.0, 2.0) and not flt(1.0, 1.0 + 1e-12)
        assert fge(2.0, 2.0) and fgt(2.0, 1.0)
        assert fzero(1e-12) and not fzero(1e-3)

    def test_fsign(self):
        assert fsign(0.5) == 1
        assert fsign(-0.5) == -1
        assert fsign(1e-12) == 0
