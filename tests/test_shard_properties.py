"""Property: hash-partition → scatter → gather is a permutation-free identity.

Over randomly generated fleets — ⊥/gap lanes, open/closed unit
boundaries, query instants biased onto the boundaries themselves — the
sharded execution path must return *bit-identical* arrays to the
unsharded vector kernels: same dtypes, same order, same NaN payloads,
same closedness flags.  A separate property keeps the identity alive
under concurrent ingest (appends and in-place replacements between
queries), which is exactly the server's life.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import (
    ShardManager,
    ShardedFleet,
    sharded_atinstant,
    sharded_window_intervals,
)
from repro.spatial.bbox import Rect
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint
from repro.vector.kernels import atinstant_batch, window_intervals_batch
from repro.vector.store import _BUILDERS

coord = st.floats(min_value=-60.0, max_value=60.0, allow_nan=False)


@st.composite
def moving_points(draw, max_units=4):
    """A sliced moving point: gapped intervals, random closedness."""
    n = draw(st.integers(min_value=0, max_value=max_units))
    t = draw(st.floats(min_value=-40.0, max_value=40.0, allow_nan=False))
    units = []
    for _ in range(n):
        t += draw(st.floats(min_value=0.1, max_value=8.0, allow_nan=False))
        s = t
        t += draw(st.floats(min_value=0.1, max_value=8.0, allow_nan=False))
        units.append(
            UPoint.between(
                s, (draw(coord), draw(coord)),
                t, (draw(coord), draw(coord)),
                lc=draw(st.booleans()), rc=draw(st.booleans()),
            )
        )
    return MovingPoint(units)


@st.composite
def fleets(draw, min_size=1, max_size=12):
    return draw(
        st.lists(moving_points(), min_size=min_size, max_size=max_size)
    )


def _boundary_instant(draw, mappings):
    """A query instant, biased onto an actual unit boundary."""
    boundaries = [
        b
        for m in mappings
        for u in m.units
        for b in (u.interval.s, u.interval.e)
    ]
    if boundaries and draw(st.booleans()):
        return draw(st.sampled_from(boundaries))
    return draw(st.floats(min_value=-60.0, max_value=80.0, allow_nan=False))


@st.composite
def fleet_and_instant(draw):
    mappings = draw(fleets())
    return mappings, _boundary_instant(draw, mappings)


@st.composite
def fleet_and_window(draw):
    mappings = draw(fleets())
    t0 = _boundary_instant(draw, mappings)
    t1 = t0 + draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
    x0, y0 = draw(coord), draw(coord)
    rect = Rect(
        x0, y0,
        x0 + draw(st.floats(min_value=0.0, max_value=80.0, allow_nan=False)),
        y0 + draw(st.floats(min_value=0.0, max_value=80.0, allow_nan=False)),
    )
    return mappings, rect, t0, t1


def _assert_bit_identical(got, want):
    for g, w in zip(got, want):
        assert g.dtype == w.dtype
        assert g.shape == w.shape
        # tobytes() equality is NaN-exact: np.array_equal would pass a
        # ⊥ lane holding the wrong payload and fail a correct one.
        assert g.tobytes() == w.tobytes()


@given(fw=fleet_and_window(), n_shards=st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_window_scatter_gather_identity(fw, n_shards):
    mappings, rect, t0, t1 = fw
    manager = ShardManager(ShardedFleet(mappings, n_shards))
    want = window_intervals_batch(
        _BUILDERS["upoint"](mappings), rect, t0, t1
    )
    _assert_bit_identical(sharded_window_intervals(manager, rect, t0, t1), want)


@given(fw=fleet_and_window(), n_shards=st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_window_identity_under_budget_pressure(fw, n_shards):
    mappings, rect, t0, t1 = fw
    manager = ShardManager(ShardedFleet(mappings, n_shards), budget=1)
    want = window_intervals_batch(
        _BUILDERS["upoint"](mappings), rect, t0, t1
    )
    _assert_bit_identical(sharded_window_intervals(manager, rect, t0, t1), want)


@given(fi=fleet_and_instant(), n_shards=st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_atinstant_scatter_gather_identity(fi, n_shards):
    mappings, t = fi
    manager = ShardManager(ShardedFleet(mappings, n_shards))
    want = atinstant_batch(_BUILDERS["upoint"](mappings), t)
    _assert_bit_identical(sharded_atinstant(manager, t), want)


@given(
    fw=fleet_and_window(),
    extra=fleets(min_size=1, max_size=4),
    n_shards=st.integers(min_value=2, max_value=4),
    replace_first=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_identity_survives_concurrent_ingest(fw, extra, n_shards, replace_first):
    """Queries interleaved with appends/replacements stay bit-identical
    to an unsharded kernel over the same (mutated) member list."""
    mappings, rect, t0, t1 = fw
    fleet = ShardedFleet(mappings, n_shards)
    manager = ShardManager(fleet)
    live = list(mappings)

    def check():
        want = window_intervals_batch(_BUILDERS["upoint"](live), rect, t0, t1)
        _assert_bit_identical(
            sharded_window_intervals(manager, rect, t0, t1), want
        )

    check()
    for m in extra:
        fleet.append(m)
        live.append(m)
        check()
    if replace_first:
        fleet[0] = extra[-1]
        live[0] = extra[-1]
        check()
