"""Tests for the time-dependent overlap area."""

import pytest

from repro.ranges.interval import closed
from repro.spatial.region import Region
from repro.temporal.mapping import MovingRegion
from repro.temporal.uregion import URegion
from repro.ops.overlap import overlap_area, overlap_fraction


def sliding_square(t0=0.0, t1=10.0, x0=-6.0, x1=6.0, size=4.0, y=0.0):
    return MovingRegion(
        [
            URegion.between_regions(
                t0,
                Region.box(x0, y, x0 + size, y + size),
                t1,
                Region.box(x1, y, x1 + size, y + size),
            )
        ]
    )


class TestOverlapArea:
    def test_horizontal_slide_piecewise_linear(self):
        # 4x4 square slides from x=[-6,-2] to [6,10] over a fixed [0,4]² box:
        # overlap width is piecewise linear, area = 4·width.
        mr = sliding_square()
        fixed = Region.box(0, 0, 4, 4)
        area = overlap_area(mr, fixed)

        def expected(t):
            x_left = -6.0 + 1.2 * t
            lo = max(x_left, 0.0)
            hi = min(x_left + 4.0, 4.0)
            return 4.0 * max(hi - lo, 0.0)

        for k in range(41):
            t = 10.0 * k / 40.0
            got = area.value_at(t)
            assert got is not None
            assert got.value == pytest.approx(expected(t), abs=1e-6), f"t={t}"

    def test_diagonal_slide_quadratic(self):
        # Diagonal motion: overlap = width(t)·height(t), both linear.
        mr = MovingRegion(
            [
                URegion.between_regions(
                    0.0, Region.box(-4, -4, 0, 0), 10.0, Region.box(4, 4, 8, 8)
                )
            ]
        )
        fixed = Region.box(0, 0, 4, 4)
        area = overlap_area(mr, fixed)

        def expected(t):
            x0 = -4 + 0.8 * t
            w = max(min(x0 + 4, 4) - max(x0, 0), 0.0)
            return w * w  # symmetric in x and y

        for k in range(21):
            t = 10.0 * k / 20.0
            got = area.value_at(t)
            assert got.value == pytest.approx(expected(t), abs=1e-5), f"t={t}"

    def test_never_overlapping(self):
        mr = sliding_square(y=100.0)
        area = overlap_area(mr, Region.box(0, 0, 4, 4))
        assert area.maximum() == pytest.approx(0.0, abs=1e-9)

    def test_fully_contained(self):
        mr = sliding_square(x0=10.0, x1=30.0, size=2.0, y=10.0)
        fixed = Region.box(0, 0, 50, 50)
        area = overlap_area(mr, fixed)
        assert area.minimum() == pytest.approx(4.0, rel=1e-6)
        assert area.maximum() == pytest.approx(4.0, rel=1e-6)

    def test_fraction(self):
        mr = sliding_square()
        fixed = Region.box(0, 0, 4, 4)
        frac = overlap_fraction(mr, fixed)
        # At full overlap the square covers the fixed box entirely.
        assert frac.maximum() == pytest.approx(1.0, abs=1e-6)
        # Interpolation noise may dip microscopically below zero.
        assert frac.minimum() >= -1e-6

    def test_empty_fixed(self):
        assert not overlap_area(sliding_square(), Region())

    def test_continuity_at_events(self):
        mr = sliding_square()
        fixed = Region.box(0, 0, 4, 4)
        area = overlap_area(mr, fixed)
        # Consecutive units agree at shared boundaries (continuity).
        for a, b in zip(area.units, area.units[1:]):
            t = b.interval.s
            va = a.eval(t)
            vb = b.eval(t)
            assert va == pytest.approx(vb, abs=1e-6)
