"""Property-based tests (hypothesis) for the core invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.mergesegs import merge_segs
from repro.geometry.segment import make_seg, point_on_seg, seg_length
from repro.ranges.interval import Interval, closed
from repro.ranges.rangeset import RangeSet
from repro.spatial.points import Points
from repro.spatial.region import Region
from repro.storage.records import StoredValue, pack_value, unpack_value
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.quadratics import eval_quad, solve_quadratic
from repro.temporal.ureal import UReal
from repro.ops.distance import mpoint_distance

# -- strategies ----------------------------------------------------------------

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
coords = st.tuples(small, small)


@st.composite
def intervals(draw):
    s = draw(small)
    e = draw(small)
    assume(s != e)
    s, e = min(s, e), max(s, e)
    lc = draw(st.booleans())
    rc = draw(st.booleans())
    return Interval(s, e, lc, rc)


@st.composite
def rangesets(draw):
    ivs = draw(st.lists(intervals(), max_size=6))
    return RangeSet.normalized(ivs)


@st.composite
def waypoint_tracks(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    start = draw(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    times = [start]
    for g in gaps:
        times.append(times[-1] + g)
    pts = draw(st.lists(coords, min_size=n, max_size=n))
    return MovingPoint.from_waypoints(list(zip(times, pts)))


# -- interval algebra ---------------------------------------------------------


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_disjoint_symmetric(self, a, b):
        assert a.disjoint(b) == b.disjoint(a)

    @given(intervals(), intervals())
    def test_adjacent_implies_disjoint(self, a, b):
        if a.adjacent(b):
            assert a.disjoint(b)

    @given(intervals(), intervals())
    def test_intersection_contained_in_both(self, a, b):
        common = a.intersection(b)
        if common is not None:
            assert a.contains_interval(common)
            assert b.contains_interval(common)

    @given(intervals(), intervals())
    def test_intersection_nonempty_iff_not_disjoint(self, a, b):
        assert (a.intersection(b) is not None) == (not a.disjoint(b))

    @given(intervals(), small)
    def test_membership_consistent_with_disjoint(self, iv, v):
        point = Interval(v, v)
        if iv.contains(v):
            assert not iv.disjoint(point)
        else:
            assert iv.disjoint(point)


class TestRangeSetProperties:
    @given(rangesets(), rangesets(), small)
    def test_union_membership(self, a, b, v):
        assert a.union(b).contains(v) == (a.contains(v) or b.contains(v))

    @given(rangesets(), rangesets(), small)
    def test_intersection_membership(self, a, b, v):
        assert a.intersection(b).contains(v) == (a.contains(v) and b.contains(v))

    @given(rangesets(), rangesets(), small)
    def test_difference_membership(self, a, b, v):
        assert a.difference(b).contains(v) == (a.contains(v) and not b.contains(v))

    @given(rangesets(), rangesets())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rangesets())
    def test_self_difference_empty(self, a):
        assert not a.difference(a)

    @given(rangesets())
    def test_canonical_roundtrip(self, a):
        assert RangeSet.normalized(list(a)) == a


# -- quadratics ---------------------------------------------------------------


class TestQuadraticProperties:
    @given(small, small, small)
    def test_roots_evaluate_to_zero(self, a, b, c):
        scale = max(abs(a), abs(b), abs(c), 1.0)
        for r in solve_quadratic(a, b, c):
            assume(abs(r) < 1e8)
            assert abs(eval_quad((a, b, c), r)) <= 1e-5 * scale * max(r * r, 1.0)

    @given(small, small)
    def test_linear_root(self, b, c):
        assume(abs(b) > 1e-6)
        roots = solve_quadratic(0.0, b, c)
        assert len(roots) == 1
        assert roots[0] * b + c == 0 or abs(roots[0] * b + c) < 1e-9 * max(abs(c), 1)


# -- geometry -----------------------------------------------------------------


class TestGeometryProperties:
    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=8))
    def test_merge_segs_preserves_membership(self, raw):
        segs = []
        for p, q in raw:
            # Exact inequality is not enough: a segment of length ~1e-16
            # is nonequal bitwise but degenerate under the library eps,
            # and merge_segs rightly collapses it.  Only segments long
            # enough to survive eps snapping are fair membership probes.
            if p != q and math.hypot(q[0] - p[0], q[1] - p[1]) > 1e-7:
                segs.append(make_seg(p, q))
        assume(segs)
        merged = merge_segs(segs)
        # Every original segment midpoint lies on some merged segment.
        for s in segs:
            mid = ((s[0][0] + s[1][0]) / 2, (s[0][1] + s[1][1]) / 2)
            assert any(point_on_seg(mid, m, 1e-6) for m in merged)

    @given(st.lists(coords, min_size=3, max_size=10, unique=True))
    def test_region_area_nonnegative(self, pts):
        from repro.geometry.primitives import convex_hull

        hull = convex_hull(pts)
        assume(len(hull) >= 3)
        r = Region.polygon(hull)
        assert r.area() > 0
        assert r.perimeter() > 0

    @given(st.lists(coords, min_size=3, max_size=10, unique=True), coords)
    def test_convex_region_contains_centroid_not_far_points(self, pts, probe):
        from repro.geometry.primitives import convex_hull

        hull = convex_hull(pts)
        assume(len(hull) >= 3)
        r = Region.polygon(hull)
        cx = sum(p[0] for p in hull) / len(hull)
        cy = sum(p[1] for p in hull) / len(hull)
        assert r.contains_point((cx, cy))
        far = (probe[0] + 1e5, probe[1] + 1e5)
        assert not r.contains_point(far)


# -- moving values ------------------------------------------------------------


class TestMovingProperties:
    @given(waypoint_tracks(), small)
    def test_value_defined_iff_in_deftime(self, mp, t):
        defined = mp.value_at(t) is not None
        assert defined == mp.deftime().contains(t)

    @given(waypoint_tracks())
    def test_trajectory_length_at_most_travelled(self, mp):
        assert mp.trajectory().length() <= mp.length() + 1e-6

    @given(waypoint_tracks())
    def test_endpoints_on_track(self, mp):
        first = mp.initial()
        last = mp.final()
        assert first.time == mp.start_time()
        assert last.time == mp.end_time()

    @given(waypoint_tracks(), waypoint_tracks())
    def test_distance_symmetric_and_nonnegative(self, a, b):
        dab = mpoint_distance(a, b)
        dba = mpoint_distance(b, a)
        assert dab.deftime() == dba.deftime()
        for iv in dab.deftime():
            t = iv.midpoint()
            va = dab.value_at(t).value
            vb = dba.value_at(t).value
            assert va >= 0
            assert va == vb or abs(va - vb) < 1e-9 * max(va, 1.0)

    @given(waypoint_tracks(), small)
    def test_distance_matches_pointwise(self, mp, t):
        other = MovingPoint.from_waypoints(
            [(mp.start_time(), (0.0, 0.0)), (mp.end_time(), (0.0, 0.0))]
        ) if mp.start_time() < mp.end_time() else None
        assume(other is not None)
        d = mpoint_distance(mp, other)
        assume(d.deftime().contains(t))
        p = mp.value_at(t)
        expected = math.hypot(p.x, p.y)
        # sqrt amplifies radicand rounding near zero: with coefficient
        # rounding ~eps*|v|^2*t^2 the value error is ~sqrt of that, so
        # the absolute term must absorb a few 1e-5 even at coords<=100
        # (hypothesis found 2.2e-5 on a track that touches the origin).
        assert abs(d.value_at(t).value - expected) < 1e-6 * max(expected, 1.0) + 5e-4


# -- storage roundtrips ---------------------------------------------------------


class TestStorageProperties:
    @given(st.lists(coords, max_size=10))
    def test_points_roundtrip(self, pts):
        v = Points(pts)
        assert unpack_value(pack_value("points", v)) == v

    @given(waypoint_tracks())
    def test_mpoint_roundtrip(self, mp):
        stored = pack_value("mpoint", mp)
        assert unpack_value(StoredValue.from_bytes(stored.to_bytes())) == mp

    @given(rangesets())
    def test_rangeset_roundtrip(self, rs):
        assert unpack_value(pack_value("range", rs)) == rs

    @given(
        st.lists(
            st.tuples(small, small, small, st.booleans()), min_size=0, max_size=4
        )
    )
    def test_mreal_roundtrip(self, coeffs):
        units = []
        t = 0.0
        for a, b, c, r in coeffs:
            iv = Interval(t, t + 1.0, True, False)
            t += 1.0
            if r:
                from repro.temporal.quadratics import quad_nonnegative_on

                if not quad_nonnegative_on((a, b, c), iv.s, iv.e):
                    continue
            units.append(UReal(iv, a, b, c, r))
        try:
            m = MovingReal(units)
        except Exception:
            assume(False)
        assert unpack_value(pack_value("mreal", m)) == m
