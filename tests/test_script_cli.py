"""Tests for the SQL script runner and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.db import Database
from repro.db.script import execute_statement, run_script, split_statements
from repro.errors import CatalogError, QueryError


SCRIPT = """
-- a tiny moving objects database
CREATE TABLE planes (airline string, id string, flight mpoint);
INSERT INTO planes VALUES ('LH', 'LH1', 'MPOINT ([0 100] 0 60 0 0)');
INSERT INTO planes VALUES ('AF', 'AF1', 'MPOINT ([0 100] 0 30 10 0)');
SELECT airline, id, length(trajectory(flight)) AS dist
  FROM planes ORDER BY dist DESC;
"""


class TestSplitStatements:
    def test_basic_split(self):
        stmts = split_statements("SELECT 1 FROM t; SELECT 2 FROM t;")
        assert len(stmts) == 2

    def test_comments_stripped(self):
        stmts = split_statements("-- hello\nSELECT a FROM t; -- trailing\n")
        assert stmts == ["SELECT a FROM t"]

    def test_semicolon_inside_quotes(self):
        stmts = split_statements("INSERT INTO t VALUES ('a;b');")
        assert len(stmts) == 1
        assert "a;b" in stmts[0]

    def test_dashes_inside_quotes_kept(self):
        stmts = split_statements("INSERT INTO t VALUES ('a--b');")
        assert "a--b" in stmts[0]

    def test_multiline_statement(self):
        stmts = split_statements("SELECT a\nFROM t\nWHERE a = 1;")
        assert len(stmts) == 1


class TestScriptExecution:
    def test_full_script(self):
        db = Database()
        results = run_script(db, SCRIPT)
        assert len(results) == 4
        assert results[0].message.startswith("created")
        rows = results[-1].rows
        assert [r["id"].value for r in rows] == ["LH1", "AF1"]
        assert rows[0]["dist"] == pytest.approx(6000.0)

    def test_drop_table(self):
        db = Database()
        run_script(db, "CREATE TABLE t (a int); DROP TABLE t;")
        assert "t" not in db

    def test_explain_statement(self):
        db = Database()
        run_script(db, "CREATE TABLE t (a int);")
        result = execute_statement(db, "EXPLAIN SELECT a FROM t")
        assert "SeqScan" in result.message

    def test_numeric_literals(self):
        db = Database()
        run_script(
            db,
            "CREATE TABLE m (name string, score real);"
            "INSERT INTO m VALUES ('x', 2.5);",
        )
        rows = db.query("SELECT score FROM m")
        assert rows[0]["score"].value == 2.5

    def test_bad_statement_rejected(self):
        db = Database()
        with pytest.raises(QueryError):
            execute_statement(db, "FROB the table")

    def test_insert_into_missing_table(self):
        db = Database()
        with pytest.raises(CatalogError):
            execute_statement(db, "INSERT INTO nope VALUES (1)")

    def test_bad_column_def(self):
        db = Database()
        with pytest.raises(QueryError):
            execute_statement(db, "CREATE TABLE t (a)")


class TestCli:
    def test_info(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "discrete type system" in out
        assert "operations" in out

    def test_demo(self, capsys):
        assert cli_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Q1:" in out and "Q2:" in out

    def test_run_script(self, tmp_path, capsys):
        path = tmp_path / "s.sql"
        path.write_text(SCRIPT)
        assert cli_main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "created planes" in out
        assert "LH1" in out

    def test_figures(self, tmp_path, capsys):
        out_dir = str(tmp_path / "figs")
        assert cli_main(["figures", out_dir]) == 0
        names = sorted(p.name for p in (tmp_path / "figs").iterdir())
        assert names == [
            "figure2_line.svg",
            "figure3_region.svg",
            "figure6_uregion.svg",
        ]


class TestCliFaults:
    def setup_method(self):
        from repro import faults

        faults.disarm()

    teardown_method = setup_method

    def test_crash_matrix_command(self, capsys):
        assert cli_main(
            ["crash-matrix", "--seed", "7", "--only", "wal.sync_crash"]
        ) == 0
        out = capsys.readouterr().out
        assert "1/1 failpoints survived" in out

    def test_bad_fault_spec_is_one_line_error(self, capsys):
        assert cli_main(["--faults", "not.a.failpoint", "info"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: InvalidValue:")
        assert len(err.strip().splitlines()) == 1

    def test_debug_reraises(self):
        from repro.errors import InvalidValue

        with pytest.raises(InvalidValue):
            cli_main(["--debug", "--faults", "not.a.failpoint", "info"])

    def test_environment_errors_still_propagate(self):
        # Only repro's typed errors get the one-line treatment; a
        # missing script file is the caller's problem, unchanged.
        with pytest.raises(FileNotFoundError):
            cli_main(["run", "/nonexistent/file.sql"])

    def test_profile_report_includes_fault_counters(self, tmp_path, capsys):
        assert cli_main(
            ["--profile", "crash-matrix", "--only", "wal.torn_tail"]
        ) == 0
        out = capsys.readouterr().out
        assert "wal.records" in out
        assert "wal.syncs" in out
