"""Sharded fleets: partitioning, residency budget, scatter-gather, wiring.

Everything here asserts *equivalence first*: the sharded backend must
return bit-identical results to the unsharded vector kernels on every
path (exec entry points, SQL scans, server snapshots), with the memory
budget enforced by CLOCK eviction and recovery scoped to single shards.
"""

import os

import numpy as np
import pytest

from repro import config, obs
from repro import shard as shardmod
from repro.db import Database
from repro.errors import InvalidValue
from repro.server.executor import FleetExecutor
from repro.shard import (
    ShardManager,
    ShardedFleet,
    shard_of,
    sharded_atinstant,
    sharded_bbox_filter,
    sharded_count_inside,
    sharded_window_intervals,
)
from repro.spatial.bbox import Cube, Rect
from repro.temporal.mapping import MovingPoint
from repro.vector.cache import (
    ColumnCache,
    Fleet,
    clear_cache,
    column_nbytes,
)
from repro.vector.fleet import set_backend
from repro.vector.kernels import atinstant_batch, window_intervals_batch
from repro.vector.store import _BUILDERS, set_store
from repro.workloads.trajectories import random_flights


@pytest.fixture(autouse=True)
def _clean_state():
    """Scalar default, unsharded default, no budget, empty caches."""
    set_backend("scalar")
    shardmod.set_shards(1)
    shardmod.set_memory_budget(None)
    clear_cache()
    yield
    set_backend("scalar")
    shardmod.set_shards(1)
    shardmod.set_memory_budget(None)
    clear_cache()
    set_store(None)


def make_fleet(n=60, seed=11):
    return random_flights(n, seed=seed)


# ---------------------------------------------------------------------------
# Hash partitioning
# ---------------------------------------------------------------------------


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for n_shards in (1, 2, 3, 7):
            for gid in range(200):
                s = shard_of(gid, n_shards)
                assert 0 <= s < n_shards
                assert s == shard_of(gid, n_shards)

    def test_spreads_consecutive_ids(self):
        # The multiplicative hash must not send a consecutive run of
        # ids to one shard (a modulo-by-id layout would round-robin;
        # a constant layout would starve the scatter).
        hits = {shard_of(gid, 4) for gid in range(16)}
        assert len(hits) == 4

    def test_rejects_bad_count(self):
        with pytest.raises(InvalidValue):
            shard_of(3, 0)
        with pytest.raises(InvalidValue):
            ShardedFleet([], n_shards=0)


class TestShardedFleet:
    def test_global_order_matches_list(self):
        mappings = make_fleet(50)
        fleet = ShardedFleet(mappings, 4)
        assert len(fleet) == 50
        assert list(fleet) == list(mappings)
        for i in range(50):
            assert fleet[i] is mappings[i]

    def test_globals_ascending_and_complete(self):
        fleet = ShardedFleet(make_fleet(40), 3)
        seen = []
        for s in range(3):
            gids = fleet.globals_of(s)
            assert gids.dtype == np.int64
            assert np.all(np.diff(gids) > 0)
            seen.extend(int(g) for g in gids)
        assert sorted(seen) == list(range(40))

    def test_append_bumps_exactly_one_coordinate(self):
        mappings = make_fleet(30)
        fleet = ShardedFleet(mappings[:29], 4)
        v0 = fleet.version
        fleet.append(mappings[29])
        v1 = fleet.version
        changed = [s for s in range(4) if v0[s] != v1[s]]
        assert changed == [shard_of(29, 4)]

    def test_setitem_bumps_exactly_one_coordinate(self):
        mappings = make_fleet(30)
        fleet = ShardedFleet(mappings, 4)
        v0 = fleet.version
        fleet[7] = mappings[8]
        v1 = fleet.version
        changed = [s for s in range(4) if v0[s] != v1[s]]
        assert changed == [shard_of(7, 4)]
        assert fleet[7] is mappings[8]

    def test_ingest_routed_counted(self):
        obs.reset()
        obs.enable()
        try:
            ShardedFleet(make_fleet(10), 2)
        finally:
            obs.disable()
        assert obs.get("shard.ingest_routed") == 10

    def test_bounds_union_and_poison(self):
        mappings = make_fleet(20)
        fleet = ShardedFleet(mappings, 2)
        for s in range(2):
            bound = fleet.bounds(s)
            for j, gid in enumerate(fleet.globals_of(s)):
                assert bound.union(mappings[gid].bounding_cube()) == bound
        # A member with no bounding cube poisons its shard for good.
        fleet2 = ShardedFleet([], 1)
        fleet2.append(object())
        fleet2.append(mappings[0])
        assert fleet2.bounds(0) is None


# ---------------------------------------------------------------------------
# Column cache byte budget (satellite: colcache.bytes)
# ---------------------------------------------------------------------------


class TestColumnCacheBudget:
    def test_bytes_accounted_and_evicted(self):
        cache = ColumnCache(budget=1)
        a, b = Fleet(make_fleet(10)), Fleet(make_fleet(10, seed=12))
        cache.get(a, "upoint")
        cache.get(b, "upoint")
        # Budget of one byte: at most one entry can be mid-insertion
        # resident; the eviction loop then drops it too.
        assert cache.resident_bytes <= column_nbytes(cache.get(b, "upoint"))
        assert len(cache) <= 1

    def test_unbudgeted_keeps_entries(self):
        cache = ColumnCache()
        fleets = [Fleet(make_fleet(5, seed=s)) for s in range(4)]
        for f in fleets:
            cache.get(f, "upoint")
        assert len(cache) == 4
        assert cache.resident_bytes == sum(
            column_nbytes(cache.get(f, "upoint")) for f in fleets
        )

    def test_high_water_gauge(self):
        obs.reset()
        obs.enable()
        try:
            cache = ColumnCache()
            fleet = Fleet(make_fleet(8))
            col = cache.get(fleet, "upoint")
            gauge = obs.snapshot()["gauges"].get("colcache.bytes", 0.0)
        finally:
            obs.disable()
        assert gauge >= column_nbytes(col)

    def test_pinned_store_columns_exempt(self, tmp_path):
        set_store(os.fspath(tmp_path))
        cache = ColumnCache(budget=1)
        fleet = Fleet(make_fleet(10))
        col = cache.get(fleet, "upoint")
        assert col.source is not None  # memmap-backed: pinned
        assert cache.resident_bytes == 0
        assert len(cache) == 1  # survives a one-byte budget

    def test_drop_fleet_releases_bytes(self):
        cache = ColumnCache()
        fleet = Fleet(make_fleet(6))
        cache.get(fleet, "upoint")
        cache.get(fleet, "bbox")
        assert cache.resident_bytes > 0
        cache.drop_fleet(fleet)
        assert cache.resident_bytes == 0
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# ShardManager residency
# ---------------------------------------------------------------------------


class TestShardManager:
    def test_budget_evicts_cold_shards(self):
        fleet = ShardedFleet(make_fleet(60), 4)
        manager = ShardManager(fleet, budget=1)
        obs.reset()
        obs.enable()
        try:
            for s in range(4):
                manager.column(s, "upoint")
        finally:
            obs.disable()
        assert obs.get("shard.evictions") >= 3
        assert manager.resident_bytes <= column_nbytes(
            manager.column(0, "upoint")
        )

    def test_unbudgeted_keeps_all_resident(self):
        fleet = ShardedFleet(make_fleet(60), 4)
        manager = ShardManager(fleet)
        for s in range(4):
            manager.column(s, "upoint")
        assert manager.resident_shards() == [0, 1, 2, 3]

    def test_hits_counted_and_version_checked(self):
        mappings = make_fleet(40)
        fleet = ShardedFleet(mappings, 2)
        manager = ShardManager(fleet)
        obs.reset()
        obs.enable()
        try:
            manager.column(0, "upoint")
            manager.column(0, "upoint")
            hits = obs.get("shard.hits")
            # An ingest into shard 0 must invalidate its column.
            gid = int(fleet.globals_of(0)[0])
            fleet[gid] = mappings[gid]
            manager.column(0, "upoint")
            maps = obs.get("shard.maps")
        finally:
            obs.disable()
        assert hits == 1
        assert maps == 2

    def test_process_budget_fallback(self):
        fleet = ShardedFleet(make_fleet(40), 4)
        manager = ShardManager(fleet)  # no explicit budget
        shardmod.set_memory_budget(1)
        for s in range(4):
            manager.column(s, "upoint")
        assert len(manager.resident_shards()) <= 1

    def test_prune_rules_out_disjoint_shards(self):
        fleet = ShardedFleet(make_fleet(40), 4)
        manager = ShardManager(fleet)
        far = Cube(1e9, 1e9, 1e9, 1e9 + 1, 1e9 + 1, 1e9 + 1)
        obs.reset()
        obs.enable()
        try:
            keep = manager.prune(far)
        finally:
            obs.disable()
        assert keep == []
        assert obs.get("shard.pruned") == 4
        assert manager.resident_shards() == []  # no column was mapped

    def test_window_candidates_global_ids(self):
        mappings = make_fleet(40)
        fleet = ShardedFleet(mappings, 3)
        manager = ShardManager(fleet)
        cube = mappings[5].bounding_cube()
        cand = manager.window_candidates(cube)
        assert 5 in cand
        for gid in cand:
            assert mappings[gid].bounding_cube().intersects(cube)

    def test_per_shard_store_directories(self, tmp_path):
        fleet = ShardedFleet(make_fleet(30), 3)
        manager = ShardManager(fleet, root=os.fspath(tmp_path))
        manager.persist()
        dirs = sorted(p for p in os.listdir(tmp_path) if p.startswith("shard_"))
        assert dirs == ["shard_000", "shard_001", "shard_002"]

    def test_verify_and_repair_rebuilds_one_shard(self, tmp_path):
        fleet = ShardedFleet(make_fleet(30), 3)
        manager = ShardManager(fleet, root=os.fspath(tmp_path))
        manager.persist()
        # Corrupt exactly one shard's column payload on disk.
        victim_dir = os.path.join(tmp_path, "shard_001")
        paths = [
            os.path.join(victim_dir, p)
            for p in os.listdir(victim_dir)
            if not p.endswith("manifest.json")
        ]
        target = max(paths, key=os.path.getsize)
        with open(target, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0xFF]))
        obs.reset()
        obs.enable()
        try:
            rebuilt = manager.verify_and_repair()
        finally:
            obs.disable()
        assert rebuilt == [1]
        assert obs.get("shard.rebuilds") == 1
        # The repaired store verifies clean and still serves the column.
        assert manager.verify_and_repair() == []
        col = manager.column(1, "upoint")
        want = _BUILDERS["upoint"](fleet.shards[1])
        assert np.array_equal(col.starts, want.starts)

    def test_total_column_bytes_matches_built(self):
        fleet = ShardedFleet(make_fleet(30), 3)
        manager = ShardManager(fleet)
        built = sum(
            column_nbytes(_BUILDERS["upoint"](fleet.shards[s]))
            for s in range(3)
        )
        assert manager.total_column_bytes() == built


# ---------------------------------------------------------------------------
# Scatter-gather equivalence
# ---------------------------------------------------------------------------


def _manager(n=60, shards=4, seed=11, budget=None):
    mappings = make_fleet(n, seed=seed)
    return mappings, ShardManager(ShardedFleet(mappings, shards), budget=budget)


class TestScatterGatherEquivalence:
    @pytest.mark.parametrize("budget", [None, 1])
    def test_window_intervals_bit_identical(self, budget):
        mappings, manager = _manager(budget=budget)
        col = _BUILDERS["upoint"](mappings)
        cube = mappings[3].bounding_cube()
        rect = Rect(cube.xmin, cube.ymin, cube.xmax, cube.ymax)
        t0, t1 = cube.tmin, cube.tmax
        want = window_intervals_batch(col, rect, t0, t1)
        got = sharded_window_intervals(manager, rect, t0, t1)
        assert len(want[0]) > 0
        for g, w in zip(got, want):
            assert g.dtype == w.dtype
            assert g.tobytes() == w.tobytes()

    @pytest.mark.parametrize("budget", [None, 1])
    def test_atinstant_bit_identical(self, budget):
        mappings, manager = _manager(budget=budget)
        col = _BUILDERS["upoint"](mappings)
        t = mappings[0].units[0].interval.s
        want = atinstant_batch(col, t)
        got = sharded_atinstant(manager, t)
        for g, w in zip(got, want):
            assert g.tobytes() == w.tobytes()

    def test_count_inside_matches_scalar(self):
        from repro.workloads.regions import regular_polygon

        mappings, manager = _manager()
        t = mappings[0].units[0].interval.s
        region = regular_polygon((0.0, 0.0), 1e6, 8)
        want = sum(
            1
            for m in mappings
            if m.value_at(t) is not None
            and region.contains_point(m.value_at(t).vec)
        )
        assert sharded_count_inside(manager, region, t) == want

    def test_bbox_filter_ascending_globals(self):
        mappings, manager = _manager()
        cube = mappings[7].bounding_cube()
        got = sharded_bbox_filter(manager, cube)
        want = [
            i
            for i, m in enumerate(mappings)
            if m.bounding_cube().intersects(cube)
        ]
        assert got == want

    def test_no_match_window_is_dtype_exact_empty(self):
        mappings, manager = _manager()
        got = sharded_window_intervals(
            manager, Rect(1e9, 1e9, 1e9 + 1, 1e9 + 1), 0.0, 1.0
        )
        want = window_intervals_batch(
            _BUILDERS["upoint"](mappings), Rect(1e9, 1e9, 1e9 + 1, 1e9 + 1),
            0.0, 1.0,
        )
        for g, w in zip(got, want):
            assert g.dtype == w.dtype
            assert len(g) == len(w) == 0

    def test_empty_fleet(self):
        manager = ShardManager(ShardedFleet([], 3))
        got = sharded_window_intervals(manager, Rect(0, 0, 1, 1), 0.0, 1.0)
        assert all(len(g) == 0 for g in got)
        x, y, defined = sharded_atinstant(manager, 0.0)
        assert len(x) == len(y) == len(defined) == 0

    def test_scalar_backend_falls_through(self):
        mappings, manager = _manager(n=20, shards=2)
        cube = mappings[3].bounding_cube()
        rect = Rect(cube.xmin, cube.ymin, cube.xmax, cube.ymax)
        want = sharded_window_intervals(manager, rect, cube.tmin, cube.tmax)
        got = sharded_window_intervals(
            manager, rect, cube.tmin, cube.tmax, backend="scalar"
        )
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_scatters_counted(self):
        mappings, manager = _manager(n=20, shards=2)
        obs.reset()
        obs.enable()
        try:
            sharded_atinstant(manager, mappings[0].units[0].interval.s)
        finally:
            obs.disable()
        assert obs.get("shard.scatters") == 1


# ---------------------------------------------------------------------------
# SQL planner wiring
# ---------------------------------------------------------------------------


def planes_db():
    db = Database()
    planes = db.create_relation(
        "planes",
        [("airline", "string"), ("id", "string"), ("flight", "mpoint")],
    )
    planes.insert(
        ["L", "LH1",
         MovingPoint.from_waypoints([(0, (0, 0)), (100, (6000, 0))])]
    )
    planes.insert(
        ["L", "LH2",
         MovingPoint.from_waypoints([(0, (0, 10)), (100, (3000, 10))])]
    )
    planes.insert(
        ["A", "AF1",
         MovingPoint.from_waypoints([(50, (0, 0.2)), (150, (6000, 0.2))])]
    )
    return db


SQL_QUERIES = [
    "SELECT id FROM planes WHERE present(flight, 120)",
    "SELECT id FROM planes WHERE passes_window(flight, 0, 0, 100, 100, 0, 10)",
    "SELECT id FROM planes WHERE passes_window(flight, 0, 0, 100, 100, 0, 10) "
    "AND present(flight, 5)",
]


class TestSqlWiring:
    @pytest.mark.parametrize("sql", SQL_QUERIES)
    def test_sharded_backend_parity(self, sql):
        db = planes_db()
        set_backend("scalar")
        scalar = sorted(r["id"].value for r in db.query(sql))
        set_backend("sharded")
        shardmod.set_shards(2)
        sharded = sorted(r["id"].value for r in db.query(sql))
        assert sharded == scalar

    def test_explain_shows_sharded_scan(self):
        from repro.db.sql import explain

        db = planes_db()
        set_backend("sharded")
        shardmod.set_shards(3)
        plan = explain(db, SQL_QUERIES[0])
        assert "ShardedScan(planes" in plan
        assert "shards=3" in plan
        assert "budget=unbounded" in plan
        shardmod.set_memory_budget(64 * 1024)
        assert "budget=65536" in explain(db, SQL_QUERIES[0])

    def test_budgeted_scan_parity(self):
        db = planes_db()
        set_backend("scalar")
        scalar = sorted(r["id"].value for r in db.query(SQL_QUERIES[1]))
        set_backend("sharded")
        shardmod.set_shards(2)
        shardmod.set_memory_budget(1)
        sharded = sorted(r["id"].value for r in db.query(SQL_QUERIES[1]))
        assert sharded == scalar


# ---------------------------------------------------------------------------
# Server wiring
# ---------------------------------------------------------------------------


class _Req:
    def __init__(self, fleet, obj, unit, seq=""):
        self.fleet = fleet
        self.obj = obj
        self.unit = unit
        self.seq = seq


class TestServerWiring:
    def test_snapshot_parity_with_unsharded(self):
        mappings = make_fleet(50)
        plain = FleetExecutor()
        plain.register_fleet("f", mappings)
        sharded = FleetExecutor()
        fleet = sharded.register_fleet("f", mappings, shards=3)
        assert isinstance(fleet, ShardedFleet)
        t = mappings[0].units[0].interval.s
        _, want = plain.snapshot_rows("f", t)
        _, got = sharded.snapshot_rows("f", t)
        assert got == want
        window = (0.0, 0.0, 5000.0, 5000.0)
        _, want = plain.snapshot_rows("f", t, window=window)
        _, got = sharded.snapshot_rows("f", t, window=window)
        assert got == want

    def test_ingest_touches_exactly_one_shard(self):
        ex = FleetExecutor()
        ex.register_fleet("f", make_fleet(20), shards=4)
        v0 = ex.fleet("f").version
        out = ex.apply_units(
            [_Req("f", 20, (0.0, 1.0, 1.0, 2.0, 3.0, 3.0))]
        )
        assert out == [1]
        v1 = ex.fleet("f").version
        changed = [s for s in range(4) if v0[s] != v1[s]]
        assert changed == [shard_of(20, 4)]
        # The new object is served by the next snapshot.
        _, rows = ex.snapshot_rows("f", 1.0)
        assert any(r[0] == 20 for r in rows)

    def test_snapshot_isolation_across_ingest(self):
        mappings = make_fleet(20)
        ex = FleetExecutor()
        ex.register_fleet("f", mappings, shards=3)
        t = mappings[0].units[0].interval.s
        snap, before = ex.snapshot_rows("f", t)
        ex.apply_units([_Req("f", 20, (t, 9.0, 9.0, t + 1.0, 9.0, 9.0))])
        _, after_pin = ex.snapshot_rows("f", t)
        # The live fleet sees the ingest; the earlier rows are untouched
        # (they were assembled from columns pinned at snap's vector).
        assert any(r[0] == 20 for r in after_pin)
        assert not any(r[0] == 20 for r in before)

    def test_budgeted_server_snapshot(self):
        mappings = make_fleet(30)
        shardmod.set_memory_budget(1)
        ex = FleetExecutor()
        ex.register_fleet("f", mappings, shards=4)
        plain = FleetExecutor()
        plain.register_fleet("f", mappings)
        t = mappings[0].units[0].interval.s
        _, want = plain.snapshot_rows("f", t)
        _, got = ex.snapshot_rows("f", t)
        assert got == want

    def test_stats_reports_shards(self):
        ex = FleetExecutor()
        ex.register_fleet("f", make_fleet(10), shards=2)
        stats = ex.stats()
        assert stats["fleet.f.shards"] == 2
        assert stats["fleet.f.objects"] == 10
        v0 = stats["fleet.f.version"]
        ex.apply_units([_Req("f", 10, (0.0, 0.0, 0.0, 1.0, 1.0, 1.0))])
        assert ex.stats()["fleet.f.version"] == v0 + 1

    def test_process_default_shards(self):
        shardmod.set_shards(3)
        ex = FleetExecutor()
        fleet = ex.register_fleet("f", make_fleet(10))
        assert isinstance(fleet, ShardedFleet)
        assert fleet.n_shards == 3


# ---------------------------------------------------------------------------
# Chaos scenario + CLI flags
# ---------------------------------------------------------------------------


class TestChaosScenario:
    def test_evict_during_query_quick(self):
        from repro.server.chaos import SCENARIOS

        entry = SCENARIOS["shard.evict_during_query"](
            "shard.evict_during_query", 2026, True
        )
        assert entry.fired
        assert entry.ok, entry.detail


class TestCliFlags:
    def test_shards_validation(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["--shards", "0", "info"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_memory_budget_validation(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["--memory-budget", "64x", "info"]) == 2
        assert "--memory-budget" in capsys.readouterr().err

    def test_parse_bytes_suffixes(self):
        from repro.cli import _parse_bytes

        assert _parse_bytes("512") == 512
        assert _parse_bytes("2k") == 2048
        assert _parse_bytes("64M") == 64 * 1024 ** 2
        assert _parse_bytes("1g") == 1024 ** 3
        with pytest.raises(ValueError):
            _parse_bytes("0")

    def test_flags_arm_process_defaults(self):
        from repro.cli import main as cli_main

        assert (
            cli_main(
                ["--backend", "sharded", "--shards", "2",
                 "--memory-budget", "1k", "snapshot", "--objects", "16"]
            )
            == 0
        )
        assert shardmod.get_shards() == 2
        assert shardmod.get_memory_budget() == 1024


# ---------------------------------------------------------------------------
# 2-shard equivalence smoke (scripts/check.sh runs -k smoke)
# ---------------------------------------------------------------------------


def test_v10_smoke_shard_equivalence(monkeypatch):
    """2 shards, tiny budget: window + instant results bit-identical."""
    monkeypatch.setattr(config, "PARALLEL_MIN_OBJECTS", 2)
    mappings = make_fleet(24, seed=5)
    manager = ShardManager(ShardedFleet(mappings, 2), budget=1)
    col = _BUILDERS["upoint"](mappings)
    cube = mappings[1].bounding_cube()
    rect = Rect(cube.xmin, cube.ymin, cube.xmax, cube.ymax)
    want = window_intervals_batch(col, rect, cube.tmin, cube.tmax)
    got = sharded_window_intervals(manager, rect, cube.tmin, cube.tmax)
    assert len(want[0]) > 0
    for g, w in zip(got, want):
        assert g.tobytes() == w.tobytes()
    t = mappings[0].units[0].interval.s
    for g, w in zip(sharded_atinstant(manager, t), atinstant_batch(col, t)):
        assert g.tobytes() == w.tobytes()
