"""Tests for fleet analytics and the EXPLAIN plan printer."""

import pytest

from repro.base.values import IntVal
from repro.db import Database
from repro.db.sql import explain
from repro.ranges.interval import closed
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint
from repro.ops.analytics import (
    occupancy,
    peak_presence,
    presence_count,
    total_travelled,
)


def track(t0, t1, y):
    return MovingPoint.from_waypoints([(t0, (0.0, y)), (t1, (10.0, y))])


class TestPresenceCount:
    def test_staggered_fleet(self):
        fleet = [track(0, 10, 0), track(5, 15, 1), track(20, 25, 2)]
        counts = presence_count(fleet)
        assert counts.value_at(2.0) == IntVal(1)
        assert counts.value_at(7.0) == IntVal(2)
        assert counts.value_at(12.0) == IntVal(1)
        assert counts.value_at(17.0) is None  # nobody defined
        assert counts.value_at(22.0) == IntVal(1)

    def test_boundary_instants(self):
        fleet = [track(0, 10, 0), track(10, 20, 1)]
        # Both tracks are defined exactly at t=10 (closed ends).
        counts = presence_count(fleet)
        assert counts.value_at(10.0) == IntVal(2)

    def test_empty(self):
        assert len(presence_count([])) == 0

    def test_peak(self):
        fleet = [track(0, 10, 0), track(2, 8, 1), track(4, 6, 2)]
        peak, when = peak_presence(fleet)
        assert peak == 3
        assert 4.0 <= when <= 6.0


class TestOccupancy:
    def test_zone_occupancy(self):
        zone = Region.box(4, -1, 6, 3)
        # Both tracks cross x in [4, 6] during t in [4, 6].
        fleet = [track(0, 10, 0), track(0, 10, 1), track(0, 10, 100)]
        occ = occupancy(fleet, zone)
        assert occ.value_at(5.0) == IntVal(2)
        assert occ.value_at(1.0) is None  # nobody inside

    def test_total_travelled(self):
        fleet = [track(0, 10, 0), track(0, 10, 1)]
        assert total_travelled(fleet) == pytest.approx(20.0)


class TestExplain:
    @pytest.fixture
    def db(self):
        db = Database()
        planes = db.create_relation(
            "planes", [("airline", "string"), ("id", "string"), ("flight", "mpoint")]
        )
        airlines = db.create_relation(
            "airlines", [("code", "string"), ("country", "string")]
        )
        planes.insert(["LH", "LH1", track(0, 10, 0)])
        airlines.insert(["LH", "Germany"])
        return db

    def test_scan_filter_project(self, db):
        text = explain(db, "SELECT id FROM planes WHERE airline = 'LH'")
        assert "Project(id)" in text
        assert "Select(" in text
        assert "SeqScan(planes AS planes)" in text
        # Indentation reflects nesting.
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert lines[-1].strip().startswith("SeqScan")

    def test_hash_join_plan(self, db):
        text = explain(
            db,
            "SELECT p.id FROM planes p JOIN airlines a ON p.airline = a.code",
        )
        assert "HashJoin" in text

    def test_aggregate_sort_limit(self, db):
        text = explain(
            db,
            "SELECT airline, count(*) AS n FROM planes "
            "GROUP BY airline ORDER BY airline LIMIT 3",
        )
        assert "Aggregate" in text and "Sort" in text and "Limit(3)" in text

    def test_plan_executes_same_rows(self, db):
        sql = "SELECT id FROM planes WHERE airline = 'LH'"
        assert db.query(sql)  # plan built by explain is the same shape
        assert "SeqScan" in explain(db, sql)
