"""Parallel execution layer: shared-memory chunking, cache, DB wiring.

Everything here asserts *equivalence first*: the parallel backend must
return bit-identical results to the vector and scalar backends on every
path (fleet helpers, window engine, SQL batch predicates), with the
counted fallbacks engaging exactly when dispatch is not worthwhile.
"""

import numpy as np
import pytest

from repro import config, obs
from repro.db import Database
from repro.parallel import (
    attach,
    chunk_bounds,
    effective_workers,
    group_intervals,
    pack,
    parallel_atinstant,
    parallel_bbox_filter,
    parallel_count_inside,
    parallel_present,
    parallel_window_intervals,
    set_workers,
)
from repro.errors import InvalidValue
from repro.ops.window import WindowQueryEngine, mpoint_within_rect_times
from repro.ranges.interval import Interval
from repro.ranges.rangeset import RangeSet
from repro.spatial.bbox import Cube, Rect
from repro.temporal.mapping import MovingPoint
from repro.vector.cache import Fleet, clear_cache, column_for
from repro.vector.columns import BBoxColumn, UPointColumn
from repro.vector.fleet import (
    fleet_atinstant,
    fleet_bbox_filter,
    fleet_count_inside,
    set_backend,
)
from repro.vector.kernels import (
    atinstant_batch,
    bbox_filter_batch,
    window_intervals_batch,
)
from repro.workloads.regions import regular_polygon
from repro.workloads.trajectories import random_flights


@pytest.fixture(autouse=True)
def _clean_state():
    """Scalar default, no worker override, empty column cache."""
    set_backend("scalar")
    set_workers(None)
    clear_cache()
    yield
    set_backend("scalar")
    set_workers(None)
    clear_cache()


@pytest.fixture
def small_min_objects(monkeypatch):
    """Let tiny test fleets qualify for pool dispatch."""
    monkeypatch.setattr(config, "PARALLEL_MIN_OBJECTS", 2)


def make_fleet(n=40, seed=7):
    return random_flights(n, seed=seed)


# ---------------------------------------------------------------------------
# Fleet + ColumnCache
# ---------------------------------------------------------------------------


class TestFleetCache:
    def test_version_bumps_on_mutation(self):
        fleet = Fleet(make_fleet(3))
        v0 = fleet.version
        fleet.append(MovingPoint([]))
        assert fleet.version > v0
        v1 = fleet.version
        fleet[0] = MovingPoint([])
        assert fleet.version > v1
        v2 = fleet.version
        del fleet[0]
        assert fleet.version > v2
        v3 = fleet.version
        fleet.invalidate()
        assert fleet.version > v3

    def test_hit_miss_invalidation_counters(self):
        fleet = Fleet(make_fleet(5))
        obs.reset()
        obs.enable()
        try:
            c1 = column_for(fleet, "upoint")
            c2 = column_for(fleet, "upoint")
            assert c1 is c2  # cached instance reused
            fleet.append(MovingPoint([]))
            c3 = column_for(fleet, "upoint")
            assert c3 is not c1
            # A structural rewrite (slice assignment) defeats the
            # changelog, so the stale entry is a full invalidation.
            fleet[:] = list(fleet)[:4]
            c4 = column_for(fleet, "upoint")
            assert c4 is not c3
        finally:
            obs.disable()
        assert obs.get("colcache.misses") == 2
        assert obs.get("colcache.hits") == 1
        # The tail append splices the cached column forward instead of
        # rebuilding it — that is the live-ingest fast path.
        assert obs.get("colcache.extended") == 1
        assert obs.get("colcache.invalidations") == 1

    def test_kinds_cached_independently(self):
        fleet = Fleet(make_fleet(4))
        obs.reset()
        obs.enable()
        try:
            column_for(fleet, "upoint")
            column_for(fleet, "bbox")
            column_for(fleet, "upoint")
            column_for(fleet, "bbox")
        finally:
            obs.disable()
        assert obs.get("colcache.misses") == 2
        assert obs.get("colcache.hits") == 2

    def test_plain_sequences_bypass_cache(self):
        fleet = make_fleet(4)
        obs.reset()
        obs.enable()
        try:
            a = column_for(fleet, "upoint")
            b = column_for(fleet, "upoint")
        finally:
            obs.disable()
        assert a is not b
        assert obs.get("colcache.hits") == 0
        assert obs.get("colcache.misses") == 0

    def test_cached_column_equals_fresh(self):
        mappings = make_fleet(6)
        fleet = Fleet(mappings)
        cached = column_for(fleet, "upoint")
        fresh = UPointColumn.from_mappings(mappings)
        assert np.array_equal(cached.offsets, fresh.offsets)
        assert np.array_equal(cached.starts, fresh.starts)
        assert np.array_equal(cached.x0, fresh.x0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidValue):
            column_for(Fleet(), "matrix")


# ---------------------------------------------------------------------------
# Shared-memory pack/attach + chunking
# ---------------------------------------------------------------------------


def roundtrip_fields(col, fields):
    """Pack ``col``, attach it back, return owned copies of ``fields``.

    The attached column's arrays are views over the segment, so they
    must be dropped before the segment can close — hence the copies.
    """
    descriptor, shm = pack(col)
    try:
        attached = attach(descriptor)
        copies = {
            f: np.array(getattr(attached.column, f)) for f in fields
        }
        attached.column = None  # release the views over the segment
        attached.close()
        return copies
    finally:
        shm.close()
        shm.unlink()


class TestSharedMemory:
    def test_upoint_round_trip(self):
        col = UPointColumn.from_mappings(make_fleet(10))
        fields = ("offsets", "starts", "ends", "lc", "rc",
                  "x0", "x1", "y0", "y1")
        back = roundtrip_fields(col, fields)
        for f in fields:
            assert np.array_equal(back[f], getattr(col, f)), f

    def test_bbox_round_trip(self):
        col = BBoxColumn.from_mappings(make_fleet(10))
        fields = ("xmin", "ymin", "tmin", "xmax", "ymax", "tmax")
        back = roundtrip_fields(col, fields)
        for f in fields:
            assert np.array_equal(back[f], getattr(col, f)), f

    def test_chunk_bounds_cover_exactly(self):
        col = UPointColumn.from_mappings(make_fleet(23))
        for chunks in (1, 2, 3, 7, 50):
            bounds = chunk_bounds(col.offsets, col.n_objects, chunks)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == col.n_objects
            for (_, a_hi), (b_lo, _) in zip(bounds, bounds[1:]):
                assert a_hi == b_lo
            assert all(hi > lo for lo, hi in bounds)

    def test_chunk_bounds_empty(self):
        assert chunk_bounds(None, 0, 4) == []

    def test_region_pickle_round_trip(self):
        # Regions ride the task queue to pool workers; the immutable
        # Cycle/Face/Region classes must survive pickling despite their
        # __setattr__ guards.
        import pickle

        region = regular_polygon((3.0, -2.0), 10.0, 7)
        back = pickle.loads(pickle.dumps(region))
        assert back == region
        assert back.contains_point((3.0, -2.0))
        assert not back.contains_point((50.0, 50.0))


# ---------------------------------------------------------------------------
# Parallel kernel equivalence (2 workers, tiny dispatch threshold)
# ---------------------------------------------------------------------------


class TestParallelEquivalence:
    def test_atinstant(self, small_min_objects):
        fleet = make_fleet(30)
        col = UPointColumn.from_mappings(fleet)
        t = 40.0
        xs, ys, defined = parallel_atinstant(col, t, workers=2)
        ex, ey, ed = atinstant_batch(col, t)
        assert np.array_equal(defined, ed)
        assert np.array_equal(xs[defined], ex[ed])
        assert np.array_equal(ys[defined], ey[ed])

    def test_present(self, small_min_objects):
        fleet = make_fleet(30)
        col = UPointColumn.from_mappings(fleet)
        got = parallel_present(col, 40.0, workers=2)
        expected = np.array(
            [m.value_at(40.0) is not None for m in fleet]
        )
        assert np.array_equal(got, expected)

    def test_bbox_filter(self, small_min_objects):
        fleet = make_fleet(30)
        col = BBoxColumn.from_mappings(fleet)
        cube = Cube(-500, -500, 0, 500, 500, 80)
        got = parallel_bbox_filter(col, cube, workers=2)
        assert np.array_equal(got, bbox_filter_batch(col, cube))

    def test_window_intervals(self, small_min_objects):
        fleet = make_fleet(30)
        col = UPointColumn.from_mappings(fleet)
        rect = Rect(-800, -800, 800, 800)
        t0, t1 = 10.0, 60.0
        got = parallel_window_intervals(col, rect, t0, t1, workers=2)
        expected = window_intervals_batch(col, rect, t0, t1)
        for g, e in zip(got, expected):
            assert np.array_equal(g, e)

    def test_count_inside(self, small_min_objects):
        fleet = make_fleet(30)
        col = UPointColumn.from_mappings(fleet)
        region = regular_polygon((0.0, 0.0), 600.0, 12)
        got = parallel_count_inside(col, region, 40.0, workers=2)
        x, y, defined = atinstant_batch(col, 40.0)
        from repro.vector.kernels import inside_prefilter

        pts = np.column_stack([x[defined], y[defined]])
        assert got == int(np.count_nonzero(inside_prefilter(pts, region)))

    def test_chunks_counter(self, small_min_objects):
        col = UPointColumn.from_mappings(make_fleet(30))
        obs.reset()
        obs.enable()
        try:
            parallel_atinstant(col, 40.0, workers=2)
        finally:
            obs.disable()
        assert obs.get("parallel.chunks") == 2
        assert obs.get("parallel.fallback") == 0


class TestFallbacks:
    def test_single_worker_falls_back(self, small_min_objects):
        col = UPointColumn.from_mappings(make_fleet(10))
        obs.reset()
        obs.enable()
        try:
            xs, ys, defined = parallel_atinstant(col, 40.0, workers=1)
        finally:
            obs.disable()
        ex, ey, ed = atinstant_batch(col, 40.0)
        assert np.array_equal(defined, ed)
        assert obs.get("parallel.fallback") == 1
        assert obs.get("parallel.fallback.workers") == 1
        assert obs.get("parallel.chunks") == 0

    def test_small_fleet_falls_back(self):
        # Default PARALLEL_MIN_OBJECTS is far above 10 objects.
        col = UPointColumn.from_mappings(make_fleet(10))
        obs.reset()
        obs.enable()
        try:
            parallel_atinstant(col, 40.0, workers=2)
        finally:
            obs.disable()
        assert obs.get("parallel.fallback.small_fleet") == 1

    def test_workers_validation(self):
        with pytest.raises(InvalidValue):
            set_workers(-1)

    def test_effective_workers_resolution(self):
        assert effective_workers(3) == 3
        set_workers(2)
        assert effective_workers(None) == 2
        set_workers(None)
        assert effective_workers(0) >= 1  # one per core, at least one


# ---------------------------------------------------------------------------
# Fleet helpers and the window engine across backends
# ---------------------------------------------------------------------------


class TestBackendParity:
    def test_fleet_helpers(self, small_min_objects):
        fleet = make_fleet(25)
        region = regular_polygon((0.0, 0.0), 700.0, 10)
        cube = Cube(-600, -600, 0, 600, 600, 90)
        t = 35.0
        scalar = fleet_atinstant(fleet, t, backend="scalar")
        par = fleet_atinstant(fleet, t, backend="parallel", workers=2)
        assert par == scalar
        assert fleet_bbox_filter(
            fleet, cube, backend="parallel", workers=2
        ) == fleet_bbox_filter(fleet, cube, backend="scalar")
        assert fleet_count_inside(
            fleet, t, region, backend="parallel", workers=2
        ) == fleet_count_inside(fleet, t, region, backend="scalar")

    def test_window_engine(self, small_min_objects):
        engine = WindowQueryEngine()
        for i, mp in enumerate(make_fleet(25)):
            engine.add(f"f{i}", mp)
        rect = Rect(-800, -800, 800, 800)
        scalar = engine.query(rect, 10.0, 60.0, backend="scalar")
        vector = engine.query(rect, 10.0, 60.0, backend="vector")
        par = engine.query(rect, 10.0, 60.0, backend="parallel", workers=2)
        naive = engine.query_naive(rect, 10.0, 60.0)
        assert par == scalar == vector == naive

    def test_window_engine_add_fleet(self, small_min_objects):
        items = [(f"f{i}", mp) for i, mp in enumerate(make_fleet(20))]
        bulk = WindowQueryEngine()
        bulk.add_fleet(items)
        incremental = WindowQueryEngine()
        for key, mp in items:
            incremental.add(key, mp)
        rect = Rect(-500, -500, 500, 500)
        for backend in ("scalar", "vector", "parallel"):
            assert bulk.query(rect, 0.0, 80.0, backend=backend, workers=2) \
                == incremental.query(rect, 0.0, 80.0, backend=backend,
                                     workers=2)

    def test_group_intervals_matches_scalar(self, small_min_objects):
        fleet = make_fleet(25)
        col = UPointColumn.from_mappings(fleet)
        rect = Rect(-800, -800, 800, 800)
        t0, t1 = 10.0, 60.0
        rows = parallel_window_intervals(col, rect, t0, t1, workers=2)
        grouped = dict(
            group_intervals(*rows, keys=list(range(len(fleet))))
        )
        clip = RangeSet([Interval(t0, t1)])
        for i, m in enumerate(fleet):
            expected = mpoint_within_rect_times(m, rect).intersection(clip)
            assert grouped.get(i, RangeSet([])) == expected, i


# ---------------------------------------------------------------------------
# SQL / planner wiring
# ---------------------------------------------------------------------------


@pytest.fixture
def planes_db():
    db = Database()
    planes = db.create_relation(
        "planes",
        [("airline", "string"), ("id", "string"), ("flight", "mpoint")],
    )
    planes.insert(
        ["L", "LH1",
         MovingPoint.from_waypoints([(0, (0, 0)), (100, (6000, 0))])]
    )
    planes.insert(
        ["L", "LH2",
         MovingPoint.from_waypoints([(0, (0, 10)), (100, (3000, 10))])]
    )
    planes.insert(
        ["A", "AF1",
         MovingPoint.from_waypoints([(50, (0, 0.2)), (150, (6000, 0.2))])]
    )
    return db


SQL_QUERIES = [
    "SELECT id FROM planes WHERE present(flight, 120)",
    "SELECT id FROM planes WHERE passes_window(flight, 0, 0, 100, 100, 0, 10)",
    "SELECT id FROM planes WHERE passes_window(flight, 0, 0, 100, 100, 0, 10) "
    "AND present(flight, 5)",
]


class TestSqlWiring:
    @pytest.mark.parametrize("sql", SQL_QUERIES)
    def test_parallel_backend_parity(
        self, planes_db, sql, small_min_objects
    ):
        set_backend("scalar")
        scalar = sorted(r["id"].value for r in planes_db.query(sql))
        set_backend("vector")
        vector = sorted(r["id"].value for r in planes_db.query(sql))
        set_backend("parallel")
        set_workers(2)
        par = sorted(r["id"].value for r in planes_db.query(sql))
        assert par == vector == scalar

    def test_explain_shows_parallel_scan(self, planes_db):
        from repro.db.sql import explain

        set_backend("parallel")
        plan = explain(planes_db, SQL_QUERIES[0])
        assert "ParallelScan(planes" in plan
        assert "workers=auto" in plan
        set_backend("vector")
        assert "VectorScan(planes" in explain(planes_db, SQL_QUERIES[0])

    def test_small_relation_falls_back_counted(self, planes_db):
        # 3 rows is far below PARALLEL_MIN_OBJECTS: the ParallelScan
        # plans, dispatch degrades to the in-process kernel, counted.
        set_backend("parallel")
        set_workers(2)
        obs.reset()
        obs.enable()
        try:
            rows = planes_db.query(SQL_QUERIES[0])
        finally:
            obs.disable()
        assert sorted(r["id"].value for r in rows) == ["AF1"]
        assert obs.get("parallel.fallback.small_fleet") >= 1
