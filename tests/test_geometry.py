"""Tests for the geometric kernel: primitives and segment predicates."""

import math

import pytest

from repro.errors import InvalidValue
from repro.geometry.primitives import (
    convex_hull,
    cross,
    dist,
    dist_sq,
    dot,
    lerp,
    midpoint,
    orientation,
    point_cmp,
    point_eq,
    polygon_area,
    unit_normal,
)
from repro.geometry.segment import (
    HalfSegment,
    Seg,
    collinear,
    halfsegments_of,
    make_seg,
    meet,
    p_intersect,
    point_on_seg,
    project_param,
    seg_intersection_point,
    seg_length,
    seg_overlap,
    segs_disjoint,
    touch,
)


class TestPrimitives:
    def test_cross_sign(self):
        assert cross((1, 0), (0, 1)) == 1.0
        assert cross((0, 1), (1, 0)) == -1.0

    def test_dot(self):
        assert dot((1, 2), (3, 4)) == 11.0

    def test_dist(self):
        assert dist((0, 0), (3, 4)) == 5.0
        assert dist_sq((0, 0), (3, 4)) == 25.0

    def test_orientation(self):
        assert orientation((0, 0), (1, 0), (1, 1)) == 1  # CCW
        assert orientation((0, 0), (1, 0), (1, -1)) == -1  # CW
        assert orientation((0, 0), (1, 0), (2, 0)) == 0  # collinear

    def test_orientation_near_collinear_with_large_coords(self):
        # Perpendicular offsets far below the tolerance read as collinear
        # even at large coordinates; clear offsets never do.
        p = (1e6, 1e6)
        q = (2e6, 2e6)
        assert orientation(p, q, (3e6, 3e6 + 1e-10)) == 0
        assert orientation(p, q, (3e6, 3e6 + 1.0)) == 1

    def test_point_cmp_lexicographic(self):
        assert point_cmp((0, 5), (1, 0)) < 0
        assert point_cmp((1, 0), (1, 1)) < 0
        assert point_cmp((1, 1), (1, 1)) == 0

    def test_point_eq_tolerance(self):
        assert point_eq((0, 0), (1e-12, -1e-12))
        assert not point_eq((0, 0), (1e-3, 0))

    def test_midpoint_lerp(self):
        assert midpoint((0, 0), (2, 4)) == (1, 2)
        assert lerp((0, 0), (10, 0), 0.3) == (3, 0)

    def test_unit_normal(self):
        n = unit_normal((0, 0), (2, 0))
        assert n == (0.0, 1.0)

    def test_unit_normal_degenerate_raises(self):
        with pytest.raises(ZeroDivisionError):
            unit_normal((1, 1), (1, 1))

    def test_polygon_area_signed(self):
        square = [(0, 0), (2, 0), (2, 2), (0, 2)]
        assert polygon_area(square) == 4.0  # CCW positive
        assert polygon_area(list(reversed(square))) == -4.0

    def test_convex_hull(self):
        pts = [(0, 0), (2, 0), (2, 2), (0, 2), (1, 1), (1, 0)]
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (2, 0), (2, 2), (0, 2)}
        assert polygon_area(hull) > 0  # CCW


class TestSegConstruction:
    def test_make_seg_orders_endpoints(self):
        assert make_seg((5, 0), (1, 0)) == ((1, 0), (5, 0))

    def test_make_seg_rejects_degenerate(self):
        with pytest.raises(InvalidValue):
            make_seg((1, 1), (1, 1))

    def test_seg_length(self):
        assert seg_length(make_seg((0, 0), (3, 4))) == 5.0

    def test_project_param(self):
        s = make_seg((0, 0), (10, 0))
        assert project_param((3, 5), s) == pytest.approx(0.3)


class TestPredicates:
    def test_collinear(self):
        assert collinear(make_seg((0, 0), (1, 1)), make_seg((2, 2), (3, 3)))
        assert not collinear(make_seg((0, 0), (1, 1)), make_seg((0, 1), (1, 0)))

    def test_p_intersect_crossing(self):
        assert p_intersect(make_seg((0, 0), (2, 2)), make_seg((0, 2), (2, 0)))

    def test_p_intersect_endpoint_contact_is_not_proper(self):
        assert not p_intersect(make_seg((0, 0), (1, 1)), make_seg((1, 1), (2, 0)))

    def test_p_intersect_touch_is_not_proper(self):
        # Endpoint of one in the interior of the other: touch, not p-intersect.
        assert not p_intersect(make_seg((0, 0), (2, 0)), make_seg((1, 0), (1, 1)))

    def test_touch(self):
        assert touch(make_seg((0, 0), (2, 0)), make_seg((1, 0), (1, 1)))
        assert not touch(make_seg((0, 0), (1, 0)), make_seg((1, 0), (2, 0)))

    def test_meet(self):
        assert meet(make_seg((0, 0), (1, 0)), make_seg((1, 0), (2, 5)))
        assert not meet(make_seg((0, 0), (1, 0)), make_seg((2, 0), (3, 0)))

    def test_overlap(self):
        assert seg_overlap(make_seg((0, 0), (2, 0)), make_seg((1, 0), (3, 0)))
        # Touching at one point only: no overlap.
        assert not seg_overlap(make_seg((0, 0), (1, 0)), make_seg((1, 0), (2, 0)))
        # Parallel but distinct lines: no overlap.
        assert not seg_overlap(make_seg((0, 0), (2, 0)), make_seg((0, 1), (2, 1)))

    def test_vertical_overlap(self):
        assert seg_overlap(make_seg((0, 0), (0, 2)), make_seg((0, 1), (0, 3)))

    def test_segs_disjoint(self):
        assert segs_disjoint(make_seg((0, 0), (1, 0)), make_seg((2, 2), (3, 3)))
        assert not segs_disjoint(make_seg((0, 0), (2, 2)), make_seg((0, 2), (2, 0)))

    def test_point_on_seg(self):
        s = make_seg((0, 0), (2, 2))
        assert point_on_seg((1, 1), s)
        assert point_on_seg((0, 0), s)
        assert not point_on_seg((1, 1.1), s)
        assert not point_on_seg((3, 3), s)


class TestIntersectionPoint:
    def test_crossing(self):
        got = seg_intersection_point(make_seg((0, 0), (2, 2)), make_seg((0, 2), (2, 0)))
        assert got == pytest.approx((1.0, 1.0))

    def test_none_for_parallel(self):
        assert (
            seg_intersection_point(make_seg((0, 0), (1, 0)), make_seg((0, 1), (1, 1)))
            is None
        )

    def test_none_for_collinear_overlap(self):
        assert (
            seg_intersection_point(make_seg((0, 0), (2, 0)), make_seg((1, 0), (3, 0)))
            is None
        )

    def test_endpoint_contact_reported(self):
        got = seg_intersection_point(make_seg((0, 0), (1, 1)), make_seg((1, 1), (2, 0)))
        assert got == pytest.approx((1.0, 1.0))


class TestHalfSegments:
    def test_two_halves_per_segment(self):
        halves = halfsegments_of([make_seg((0, 0), (1, 0))])
        assert len(halves) == 2
        assert halves[0].left_dominating and not halves[1].left_dominating

    def test_dominating_point(self):
        s = make_seg((0, 0), (1, 0))
        assert HalfSegment(s, True).dom == (0, 0)
        assert HalfSegment(s, False).dom == (1, 0)

    def test_global_order_by_dominating_point(self):
        segs = [make_seg((2, 0), (3, 0)), make_seg((0, 0), (1, 0))]
        halves = halfsegments_of(segs)
        doms = [h.dom for h in halves]
        assert doms == sorted(doms)

    def test_right_halves_sort_before_left_at_same_point(self):
        # Segment ending at (1,0) and segment starting at (1,0):
        a = make_seg((0, 0), (1, 0))
        b = make_seg((1, 0), (2, 0))
        halves = halfsegments_of([a, b])
        at_point = [h for h in halves if h.dom == (1, 0)]
        assert not at_point[0].left_dominating  # right half first
        assert at_point[1].left_dominating
