"""Tests for the line type (Section 3.2.2, Figure 2)."""

import pytest

from repro.errors import InvalidValue
from repro.geometry.segment import make_seg
from repro.spatial.line import Line


class TestConstruction:
    def test_empty(self):
        l = Line()
        assert len(l) == 0 and not l

    def test_any_segment_set_is_a_line(self):
        # Figure 2 (c): any set of (non-overlapping) segments is a line value.
        l = Line([((0, 0), (1, 1)), ((5, 5), (6, 5)), ((0, 1), (1, 0))])
        assert len(l) == 3

    def test_rejects_collinear_overlap(self):
        with pytest.raises(InvalidValue):
            Line([((0, 0), (2, 0)), ((1, 0), (3, 0))])

    def test_accepts_crossing_segments(self):
        # Proper crossings are fine; only collinear overlap is forbidden.
        l = Line([((0, 0), (2, 2)), ((0, 2), (2, 0))])
        assert len(l) == 2

    def test_accepts_touching_collinear(self):
        # Sharing one endpoint is not an overlap.
        l = Line([((0, 0), (1, 0)), ((1, 0), (2, 0))])
        assert len(l) == 2

    def test_from_unmerged_normalizes(self):
        l = Line.from_unmerged([((0, 0), (2, 0)), ((1, 0), (3, 0))])
        assert l == Line([((0, 0), (3, 0))])

    def test_polyline(self):
        l = Line.polyline([(0, 0), (1, 0), (1, 1)])
        assert len(l) == 2

    def test_canonical_order_and_equality(self):
        a = Line([((0, 0), (1, 0)), ((5, 5), (6, 6))])
        b = Line([((5, 5), (6, 6)), ((0, 0), (1, 0))])
        assert a == b and hash(a) == hash(b)

    def test_segments_canonicalized(self):
        l = Line([((1, 1), (0, 0))])  # endpoints get swapped
        assert l.segments[0] == ((0.0, 0.0), (1.0, 1.0))


class TestNumeric:
    def test_length(self):
        assert Line.polyline([(0, 0), (3, 4), (3, 10)]).length() == pytest.approx(11.0)

    def test_length_empty(self):
        assert Line().length() == 0.0

    def test_bbox(self):
        bb = Line.polyline([(0, 0), (4, 2)]).bbox()
        assert (bb.xmin, bb.ymin, bb.xmax, bb.ymax) == (0, 0, 4, 2)

    def test_bbox_empty_raises(self):
        with pytest.raises(InvalidValue):
            Line().bbox()


class TestPredicates:
    def test_contains_point(self):
        l = Line.polyline([(0, 0), (2, 2)])
        assert l.contains_point((1, 1))
        assert not l.contains_point((1, 0))

    def test_intersects(self):
        a = Line.polyline([(0, 0), (2, 2)])
        b = Line.polyline([(0, 2), (2, 0)])
        c = Line.polyline([(5, 5), (6, 6)])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_crossings(self):
        a = Line.polyline([(0, 0), (2, 2)])
        b = Line.polyline([(0, 2), (2, 0)])
        assert a.crossings(b) == [(1.0, 1.0)]


class TestSetOps:
    def test_union_merges_overlaps(self):
        a = Line([((0, 0), (2, 0))])
        b = Line([((1, 0), (3, 0))])
        assert a.union(b) == Line([((0, 0), (3, 0))])

    def test_intersection_keeps_overlap_only(self):
        a = Line([((0, 0), (2, 0))])
        b = Line([((1, 0), (3, 0))])
        assert a.intersection(b) == Line([((1, 0), (2, 0))])

    def test_intersection_drops_isolated_crossings(self):
        # A crossing point is 0-dimensional: not part of a line value.
        a = Line.polyline([(0, 0), (2, 2)])
        b = Line.polyline([(0, 2), (2, 0)])
        assert not a.intersection(b)

    def test_difference(self):
        a = Line([((0, 0), (3, 0))])
        b = Line([((1, 0), (2, 0))])
        d = a.difference(b)
        assert d.length() == pytest.approx(2.0)
        assert d.contains_point((0.5, 0))
        assert not d.contains_point((1.5, 0))

    def test_difference_disjoint(self):
        a = Line([((0, 0), (1, 0))])
        b = Line([((5, 5), (6, 5))])
        assert a.difference(b) == a


class TestHalfsegments:
    def test_count(self):
        l = Line.polyline([(0, 0), (1, 0), (2, 0)])
        assert len(l.halfsegments()) == 4

    def test_sorted(self):
        l = Line([((3, 3), (4, 4)), ((0, 0), (1, 1))])
        halves = l.halfsegments()
        keys = [h.sort_key() for h in halves]
        assert keys == sorted(keys)
