"""Tests for the instant time type (Section 3.2.1)."""

import math

import pytest

from repro.base.instant import Instant, as_time
from repro.errors import TypeMismatch, UndefinedValue


class TestConstruction:
    def test_from_float(self):
        assert Instant(2.5).value == 2.5

    def test_from_int(self):
        assert Instant(3).value == 3.0

    def test_undefined(self):
        t = Instant()
        assert not t.defined
        with pytest.raises(UndefinedValue):
            t.value

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatch):
            Instant(True)

    def test_rejects_nan(self):
        with pytest.raises(TypeMismatch):
            Instant(float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(TypeMismatch):
            Instant(math.inf)

    def test_immutable(self):
        t = Instant(1.0)
        with pytest.raises(AttributeError):
            t._t = 2.0


class TestArithmetic:
    def test_add_duration(self):
        assert (Instant(1.0) + 2.5).value == 3.5

    def test_radd(self):
        assert (2.5 + Instant(1.0)).value == 3.5

    def test_difference_of_instants_is_duration(self):
        assert Instant(5.0) - Instant(2.0) == 3.0

    def test_sub_duration(self):
        assert (Instant(5.0) - 2.0).value == 3.0


class TestOrder:
    def test_total_order(self):
        assert Instant(1.0) < Instant(2.0)
        assert Instant(2.0) <= Instant(2.0)
        assert Instant(3.0) > Instant(2.0)

    def test_compare_with_raw_number(self):
        assert Instant(1.0) < 2.0
        assert Instant(1.0) == 1.0

    def test_undefined_sorts_first(self):
        assert Instant() < Instant(-1e18)

    def test_float_conversion(self):
        assert float(Instant(4.0)) == 4.0

    def test_hash_consistent(self):
        assert hash(Instant(1.0)) == hash(Instant(1.0))


class TestAsTime:
    def test_instant_passthrough(self):
        assert as_time(Instant(2.0)) == 2.0

    def test_number_passthrough(self):
        assert as_time(3) == 3.0

    def test_rejects_strings(self):
        with pytest.raises(TypeMismatch):
            as_time("now")
