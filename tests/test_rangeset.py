"""Tests for range sets (the range(α) constructor, Section 3.2.3)."""

import pytest

from repro.errors import InvalidValue
from repro.ranges.interval import Interval, closed, interval_at, open_interval
from repro.ranges.rangeset import RangeSet


class TestConstruction:
    def test_empty(self):
        rs = RangeSet()
        assert len(rs) == 0 and not rs

    def test_valid_set(self):
        rs = RangeSet([closed(0.0, 1.0), closed(3.0, 4.0)])
        assert len(rs) == 2

    def test_rejects_overlap(self):
        with pytest.raises(InvalidValue):
            RangeSet([closed(0.0, 2.0), closed(1.0, 3.0)])

    def test_rejects_adjacent(self):
        # Adjacency violates minimality: the canonical form merges them.
        with pytest.raises(InvalidValue):
            RangeSet([closed(0.0, 1.0), Interval(1.0, 2.0, False, True)])

    def test_normalized_merges(self):
        rs = RangeSet.normalized([closed(0.0, 2.0), closed(1.0, 3.0), closed(5.0, 6.0)])
        assert list(rs) == [closed(0.0, 3.0), closed(5.0, 6.0)]

    def test_normalized_merges_adjacent(self):
        rs = RangeSet.normalized([closed(0.0, 1.0), Interval(1.0, 2.0, False, True)])
        assert list(rs) == [closed(0.0, 2.0)]

    def test_intervals_sorted(self):
        rs = RangeSet([closed(3.0, 4.0), closed(0.0, 1.0)])
        assert [iv.s for iv in rs] == [0.0, 3.0]

    def test_immutable(self):
        rs = RangeSet([closed(0.0, 1.0)])
        with pytest.raises(AttributeError):
            rs._intervals = ()

    def test_canonical_equality(self):
        a = RangeSet([closed(0.0, 1.0), closed(2.0, 3.0)])
        b = RangeSet([closed(2.0, 3.0), closed(0.0, 1.0)])
        assert a == b and hash(a) == hash(b)


class TestQueries:
    def setup_method(self):
        self.rs = RangeSet(
            [closed(0.0, 1.0), open_interval(3.0, 4.0), closed(6.0, 8.0)]
        )

    def test_contains(self):
        assert self.rs.contains(0.5)
        assert self.rs.contains(0.0)
        assert not self.rs.contains(3.0)  # open end
        assert self.rs.contains(3.5)
        assert not self.rs.contains(5.0)
        assert self.rs.contains(8.0)

    def test_interval_containing(self):
        assert self.rs.interval_containing(7.0) == closed(6.0, 8.0)
        assert self.rs.interval_containing(5.0) is None

    def test_min_max(self):
        assert self.rs.minimum == 0.0
        assert self.rs.maximum == 8.0

    def test_min_of_empty_raises(self):
        with pytest.raises(InvalidValue):
            RangeSet().minimum

    def test_total_length(self):
        assert self.rs.total_length() == pytest.approx(1.0 + 1.0 + 2.0)

    def test_span(self):
        span = self.rs.span()
        assert span.s == 0.0 and span.e == 8.0

    def test_span_of_empty(self):
        assert RangeSet().span() is None


class TestBooleanAlgebra:
    def test_union(self):
        a = RangeSet([closed(0.0, 2.0)])
        b = RangeSet([closed(1.0, 3.0), closed(5.0, 6.0)])
        assert list(a.union(b)) == [closed(0.0, 3.0), closed(5.0, 6.0)]

    def test_intersection(self):
        a = RangeSet([closed(0.0, 2.0), closed(4.0, 6.0)])
        b = RangeSet([closed(1.0, 5.0)])
        assert list(a.intersection(b)) == [closed(1.0, 2.0), closed(4.0, 5.0)]

    def test_intersection_empty(self):
        a = RangeSet([closed(0.0, 1.0)])
        b = RangeSet([closed(2.0, 3.0)])
        assert not a.intersection(b)

    def test_difference_splits(self):
        a = RangeSet([closed(0.0, 10.0)])
        b = RangeSet([open_interval(3.0, 4.0)])
        assert list(a.difference(b)) == [closed(0.0, 3.0), closed(4.0, 10.0)]

    def test_difference_closed_cut_leaves_open_ends(self):
        a = RangeSet([closed(0.0, 10.0)])
        b = RangeSet([closed(3.0, 4.0)])
        got = list(a.difference(b))
        assert got == [Interval(0.0, 3.0, True, False), Interval(4.0, 10.0, False, True)]

    def test_difference_removes_all(self):
        a = RangeSet([closed(1.0, 2.0)])
        b = RangeSet([closed(0.0, 3.0)])
        assert not a.difference(b)

    def test_difference_single_point_remainder(self):
        a = RangeSet([closed(0.0, 2.0)])
        b = RangeSet([open_interval(0.0, 2.0)])
        got = list(a.difference(b))
        assert got == [interval_at(0.0), interval_at(2.0)]

    def test_intersects(self):
        a = RangeSet([closed(0.0, 1.0), closed(4.0, 5.0)])
        b = RangeSet([closed(2.0, 4.5)])
        assert a.intersects(b)
        assert not a.intersects(RangeSet([closed(6.0, 7.0)]))

    def test_union_with_empty(self):
        a = RangeSet([closed(0.0, 1.0)])
        assert a.union(RangeSet()) == a

    def test_demorgan_on_frame(self):
        # (A ∪ B) ∩ frame == frame \ ((frame \ A) ∩ (frame \ B))
        frame = RangeSet([closed(0.0, 10.0)])
        a = RangeSet([closed(1.0, 3.0)])
        b = RangeSet([closed(2.0, 5.0), closed(7.0, 8.0)])
        lhs = a.union(b)
        rhs = frame.difference(frame.difference(a).intersection(frame.difference(b)))
        assert lhs == rhs
