"""Property-based tests, round two: window refinement, simplification,
text round-trips, lifted min/max, and the inside algorithm vs sampling."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.io.text import from_text, to_text
from repro.ranges.interval import Interval, closed
from repro.spatial.bbox import Rect
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.uregion import URegion
from repro.temporal.ureal import UReal
from repro.ops.inside import inside
from repro.ops.lifted import mreal_max, mreal_min
from repro.ops.simplify import simplification_error, simplify
from repro.ops.window import mpoint_within_rect_times

small = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
coords = st.tuples(small, small)


@st.composite
def tracks(draw, max_legs=5):
    n = draw(st.integers(min_value=2, max_value=max_legs + 1))
    start = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    times = [start]
    for g in gaps:
        times.append(times[-1] + g)
    pts = draw(st.lists(coords, min_size=n, max_size=n))
    return MovingPoint.from_waypoints(list(zip(times, pts)))


@st.composite
def rects(draw):
    x0, y0 = draw(coords)
    w = draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
    h = draw(st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
    return Rect(x0, y0, x0 + w, y0 + h)


@st.composite
def polyreals(draw, units=3):
    n = draw(st.integers(min_value=1, max_value=units))
    out = []
    t = 0.0
    for _ in range(n):
        span = draw(st.floats(min_value=0.5, max_value=5.0, allow_nan=False))
        a = draw(st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
        b = draw(st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
        c = draw(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
        out.append(UReal(Interval(t, t + span, True, False), a, b, c))
        t += span
    # Adjacent units may randomly share coefficients: normalize merges them.
    return MovingReal.normalized(out)


class TestWindowProperties:
    @given(tracks(), rects(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_window_times_match_pointwise(self, mp, rect, frac):
        t = mp.start_time() + frac * (mp.end_time() - mp.start_time())
        times = mpoint_within_rect_times(mp, rect)
        p = mp.value_at(t)
        assume(p is not None)
        # Tolerance-free equivalence except exactly on the window border.
        # The border band is closed: at distance exactly EPSILON the
        # eps-mediated containment helpers legitimately disagree with
        # the strict point test.
        on_border = (
            abs(p.x - rect.xmin) <= 1e-9
            or abs(p.x - rect.xmax) <= 1e-9
            or abs(p.y - rect.ymin) <= 1e-9
            or abs(p.y - rect.ymax) <= 1e-9
        )
        if not on_border:
            assert times.contains(t) == rect.contains_point(p.vec)


class TestSimplifyProperties:
    @given(tracks(max_legs=8), st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=60)
    def test_error_bound(self, mp, eps):
        slim = simplify(mp, eps)
        assert simplification_error(mp, slim) <= eps + 1e-9
        assert len(slim) <= len(mp)
        assert slim.start_time() == mp.start_time()
        assert slim.end_time() == mp.end_time()


class TestTextProperties:
    @given(tracks())
    @settings(max_examples=60)
    def test_mpoint_text_roundtrip(self, mp):
        assert from_text(to_text(mp)) == mp

    @given(polyreals())
    @settings(max_examples=60)
    def test_mreal_text_roundtrip(self, m):
        assert from_text(to_text(m)) == m


class TestMinMaxProperties:
    @given(polyreals(), polyreals(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_min_max_pointwise(self, a, b, frac):
        mn = mreal_min(a, b)
        mx = mreal_max(a, b)
        common = a.deftime().intersection(b.deftime())
        assume(common)
        lo, hi = common.minimum, common.maximum
        t = lo + frac * (hi - lo)
        assume(common.contains(t))
        va = a.value_at(t).value
        vb = b.value_at(t).value
        got_min = mn.value_at(t)
        got_max = mx.value_at(t)
        assume(got_min is not None and got_max is not None)
        tol = 1e-6 * max(abs(va), abs(vb), 1.0)
        assert abs(got_min.value - min(va, vb)) <= tol
        assert abs(got_max.value - max(va, vb)) <= tol


class TestInsideProperties:
    @given(
        tracks(max_legs=4),
        st.floats(min_value=1.0, max_value=50.0),
        coords,
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_inside_matches_pointwise(self, mp, size, corner, frac):
        region = Region.box(corner[0], corner[1], corner[0] + size, corner[1] + size)
        span = mp.deftime().span()
        mr = None
        from repro.temporal.mapping import MovingRegion

        mr = MovingRegion([URegion.stationary(span, region)])
        mb = inside(mp, mr)
        t = mp.start_time() + frac * (mp.end_time() - mp.start_time())
        p = mp.value_at(t)
        got = mb.value_at(t)
        assume(p is not None and got is not None)
        # Skip instants on the region boundary (closure choices differ
        # legitimately at tolerance scale).
        d = min(
            abs(p.x - region.bbox().xmin),
            abs(p.x - region.bbox().xmax),
            abs(p.y - region.bbox().ymin),
            abs(p.y - region.bbox().ymax),
        )
        assume(d > 1e-6)
        assert bool(got.value) == region.contains_point(p.vec)
