"""The crash-matrix acceptance property and degradation regressions."""

import pytest

from repro import faults, obs
from repro.errors import ReproError, StorageError
from repro.spatial.bbox import Rect
from repro.storage.buffer import BufferPool
from repro.storage.crashmatrix import (
    SCENARIOS,
    format_matrix,
    run_crash_matrix,
)
from repro.storage.pages import PageFile
from repro.temporal.mapping import MovingPoint


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    faults.reset_fired()
    yield
    faults.disarm()
    faults.reset_fired()


class TestCrashMatrix:
    def test_every_failpoint_survives(self):
        entries = run_crash_matrix(seed=2000)
        assert len(entries) == len(faults.FAILPOINT_NAMES)
        failed = [e for e in entries if not e.ok]
        assert not failed, format_matrix(entries)
        assert all(e.fired for e in entries), format_matrix(entries)

    def test_matrix_covers_the_whole_registry(self):
        # A failpoint registered without a scenario must fail loudly,
        # not silently shrink the matrix.
        assert set(SCENARIOS) == set(faults.FAILPOINT_NAMES)

    def test_seed_variation(self):
        entries = run_crash_matrix(seed=77, only="pagefile.torn_write")
        assert len(entries) == 1 and entries[0].ok, format_matrix(entries)

    def test_armed_state_restored(self):
        faults.arm("wal.sync_crash", "every:100")
        run_crash_matrix(seed=2000, only="flob.write_crash")
        assert faults.armed() == {"wal.sync_crash": "every:100"}

    def test_unknown_only_raises_nothing_runs(self):
        entries = run_crash_matrix(seed=2000, only="not.a.failpoint")
        assert entries == []

    def test_missing_scenario_detected(self, monkeypatch):
        monkeypatch.setattr(
            faults, "FAILPOINT_NAMES",
            faults.FAILPOINT_NAMES | {"phantom.site"},
        )
        with pytest.raises(ReproError, match="phantom.site"):
            run_crash_matrix(seed=2000)


class TestBufferRetry:
    def test_transient_read_retried(self):
        pf = PageFile(page_size=256)
        pool = BufferPool(pf, capacity=2)
        n = pool.new_page()
        pf.write_page(n, b"payload")
        faults.arm("pagefile.read_transient", "once")
        obs.reset()
        obs.enable()
        try:
            data = pool.pin(n)
            assert bytes(data).startswith(b"payload")
            assert obs.counters.get("buffer.retries") == 1
        finally:
            obs.disable()
            pool.unpin(n)

    def test_retry_budget_exhausts(self):
        pf = PageFile(page_size=256)
        pool = BufferPool(pf, capacity=2)
        n = pool.new_page()
        faults.arm("pagefile.read_transient", "every:1")
        with pytest.raises(StorageError):
            pool.pin(n)
        # The failed read must leave no frame behind: a later pin with
        # the fault gone reads the real page.
        faults.disarm()
        assert pool.resident_pages == 0
        pool.pin(n)
        pool.unpin(n)

    def test_eviction_during_faulted_pin_writes_back_dirty_page(self):
        # Regression: pin of page B at capacity first evicts dirty page
        # A (write-back), then reads B with a transient fault in the
        # middle.  The retry must not lose A's write-back nor leave a
        # half-filled frame for B.
        pf = PageFile(page_size=256)
        pool = BufferPool(pf, capacity=1)
        a = pool.new_page()
        frame = pool.pin(a)
        frame[:5] = b"dirty"
        pool.unpin(a, dirty=True)
        b = pool.new_page()
        pf.write_page(b, b"bee")
        faults.arm("pagefile.read_transient", "once")
        data = pool.pin(b)
        assert bytes(data).startswith(b"bee")
        pool.unpin(b)
        assert pf.read_page(a).startswith(b"dirty")
        assert pool.resident_pages == 1


class TestWindowQuarantine:
    def _engine(self):
        from repro.ops.window import WindowQueryEngine

        engine = WindowQueryEngine()
        good = MovingPoint.from_waypoints([(0, (1, 1)), (10, (2, 2))])
        rotten = MovingPoint.from_waypoints([(0, (1, 2)), (10, (2, 1))])
        engine.add("good", good)
        calls = {"n": 0}

        def loader():
            calls["n"] += 1
            if calls["n"] > 1:  # indexes fine, rots before refinement
                raise StorageError("simulated on-disk rot")
            return rotten

        engine.add_lazy("rotten", loader)
        return engine

    def test_strict_query_propagates(self):
        engine = self._engine()
        with pytest.raises(StorageError):
            engine.query(Rect(0, 0, 5, 5), 0.0, 10.0)

    def test_non_strict_query_quarantines(self):
        engine = self._engine()
        obs.reset()
        obs.enable()
        try:
            results = engine.query(Rect(0, 0, 5, 5), 0.0, 10.0, strict=False)
            assert [k for k, _ in results] == ["good"]
            assert obs.counters.get("storage.quarantined") == 1
        finally:
            obs.disable()

    def test_lazy_objects_count_and_resolve(self):
        from repro.ops.window import WindowQueryEngine

        engine = WindowQueryEngine()
        mp = MovingPoint.from_waypoints([(0, (1, 1)), (10, (2, 2))])
        engine.add_lazy("k", lambda: mp)
        assert len(engine) == 1
        results = engine.query_naive(Rect(0, 0, 5, 5), 0.0, 10.0)
        assert [k for k, _ in results] == ["k"]
