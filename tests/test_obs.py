"""The observability layer (repro.obs) and the Section-5 counter claims.

Beyond the registry mechanics, the tests here assert the paper's two
asymptotic statements *by operation count* rather than wall-clock:

* ``atinstant`` probes the unit array O(log n) times (Section 5.1);
* the refinement partition performs O(n + m) scan steps (Section 5.2);
* ``at_periods`` (rewritten as a merge-scan in PR 1) takes O(n + m)
  steps, not O(n · m).
"""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.ranges.interval import Interval
from repro.ranges.rangeset import RangeSet
from repro.temporal.mapping import MovingReal
from repro.temporal.refinement import refinement_partition
from repro.temporal.ureal import UReal


def stepped_mreal(n: int, t0: float = 0.0) -> MovingReal:
    """A moving real with exactly ``n`` units over ``[t0, t0 + n]``."""
    units = [
        UReal.constant(
            Interval(t0 + k, t0 + k + 1.0, True, k == n - 1), float(k)
        )
        for k in range(n)
    ]
    return MovingReal(units, validate=False)


@pytest.fixture(autouse=True)
def _obs_pristine():
    """Leave the global registry and switch as the test found them."""
    prev = obs.enabled
    yield
    obs.counters.reset()
    if prev:
        obs.enable()
    else:
        obs.disable()


class TestRegistry:
    def test_disabled_by_default(self):
        assert obs.enabled is False
        obs.reset()
        obs.add("nothing.recorded")
        assert obs.get("nothing.recorded") == 0

    def test_counters_and_gauges(self):
        c = obs.Counters()
        c.add("a")
        c.add("a", 4)
        c.add("b", 2)
        c.high_water("g", 3.0)
        c.high_water("g", 1.0)
        assert c.get("a") == 5
        assert c.get("b") == 2
        assert c.get("missing") == 0
        assert c.gauge("g") == 3.0
        assert c.gauge("missing") is None
        snap = c.snapshot()
        assert snap["counters"] == {"a": 5, "b": 2}
        assert snap["gauges"] == {"g": 3.0}
        c.reset()
        assert c.get("a") == 0

    def test_scope_times_and_namespaces(self):
        obs.reset()
        obs.enable()
        try:
            with obs.scope("work") as s:
                s.add("items", 3)
                s.high_water("depth", 7)
            calls, total = obs.counters.timer("work")
            assert calls == 1
            assert total >= 0.0
            assert obs.get("work.items") == 3
            assert obs.counters.gauge("work.depth") == 7
        finally:
            obs.disable()

    def test_scope_is_noop_when_disabled(self):
        obs.reset()
        with obs.scope("quiet") as s:
            s.add("items")
        assert obs.counters.timer("quiet") == (0, 0.0)
        assert obs.get("quiet.items") == 0

    def test_capture_restores_prior_state(self):
        obs.disable()
        with obs.capture() as c:
            assert obs.enabled
            obs.add("x")
            assert c.get("x") == 1
        assert not obs.enabled
        # Values survive the block for post-mortem reads.
        assert obs.get("x") == 1

    def test_report_renders_all_sections(self):
        c = obs.Counters()
        assert "no observations" in c.report()
        c.add("alpha", 10)
        c.add_time("beta", 0.25)
        c.high_water("gamma", 12.5)
        text = c.report()
        assert "alpha" in text and "10" in text
        assert "beta" in text and "calls" in text
        assert "gamma" in text and "12.5" in text


class TestSection51Probes:
    """``unit_at`` probe counts grow logarithmically in the unit count."""

    def probes_for(self, n: int) -> int:
        m = stepped_mreal(n)
        t = 0.37 * n
        with obs.capture() as c:
            unit = m.unit_at(t)
        assert unit is not None
        assert c.get("mapping.unit_at.calls") == 1
        return c.get("mapping.unit_at.probes")

    @pytest.mark.parametrize("n", [16, 256, 4096])
    def test_probe_count_is_log_n(self, n):
        probes = self.probes_for(n)
        assert 1 <= probes <= math.ceil(math.log2(n)) + 2

    def test_probe_growth_is_logarithmic_not_linear(self):
        p16 = self.probes_for(16)
        p4096 = self.probes_for(4096)
        # 256x more units may add only ~log2(256) = 8 probes...
        assert p4096 - p16 <= 9
        # ...which is nowhere near the 256x of a linear scan.
        assert p4096 < 16 * p16

    def test_instrumented_search_agrees_with_bisect(self):
        m = stepped_mreal(37)
        ts = [-0.5, 0.0, 0.5, 1.0, 17.3, 36.0, 36.999, 37.0, 37.5]
        plain = [m.unit_at(t) for t in ts]
        with obs.capture():
            counted = [m.unit_at(t) for t in ts]
        assert counted == plain


class TestSection52Refinement:
    """Refinement-partition scan steps grow linearly in n + m."""

    def visits_for(self, n: int, m: int) -> int:
        a = stepped_mreal(n)
        b = stepped_mreal(m, t0=0.25)
        with obs.capture() as c:
            pieces = list(refinement_partition(a.units, b.units))
        assert pieces
        assert c.get("refinement.calls") == 1
        assert c.get("refinement.unit_visits") == n + m
        return c.get("refinement.visits")

    def test_visits_linear_in_n_plus_m(self):
        v1 = self.visits_for(32, 32)
        v4 = self.visits_for(128, 128)
        ratio = v4 / v1
        # 4x the input must cost ~4x the scan steps: linear, with slack
        # for the constant number of boundary cuts.
        assert 3.0 <= ratio <= 5.0

    def test_visits_track_total_units_not_product(self):
        n = m = 64
        visits = self.visits_for(n, m)
        assert visits <= 6 * (n + m)
        assert visits < n * m


class TestAtPeriodsMergeScan:
    """``at_periods`` is a linear merge-scan, counter-verified."""

    def test_steps_linear_not_quadratic(self):
        n = 60
        m = 60
        mreal = stepped_mreal(n)
        periods = RangeSet(
            [Interval(k + 0.25, k + 0.75, True, True) for k in range(m)]
        )
        with obs.capture() as c:
            restricted = mreal.at_periods(periods)
        steps = c.get("mapping.at_periods.steps")
        assert len(restricted) == m
        assert c.get("mapping.at_periods.calls") == 1
        assert 0 < steps <= n + m
        assert steps < n * m // 10

    def test_counts_flow_through_public_atperiods(self):
        from repro.ops.interaction import atperiods

        mreal = stepped_mreal(8)
        periods = RangeSet([Interval(1.5, 3.5, True, True)])
        with obs.capture() as c:
            atperiods(mreal, periods)
        assert c.get("mapping.at_periods.calls") == 1
