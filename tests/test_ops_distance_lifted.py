"""Tests for lifted distance, arithmetic, comparisons, and boolean ops."""

import math

import pytest

from repro.base.values import BoolVal
from repro.errors import NotClosed
from repro.ranges.interval import Interval, closed
from repro.ranges.rangeset import RangeSet
from repro.spatial.point import Point
from repro.temporal.mapping import MovingBool, MovingPoint, MovingReal
from repro.temporal.ureal import UReal
from repro.ops.distance import closest_approach, mpoint_distance, mpoint_static_distance
from repro.ops.lifted import (
    mbool_and,
    mbool_not,
    mbool_or,
    mreal_add,
    mreal_compare,
    mreal_scale,
    mreal_sub,
)


class TestDistance:
    def test_head_on(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(0, (10, 0)), (10, (0, 0))])
        d = mpoint_distance(a, b)
        assert d.value_at(0.0).value == pytest.approx(10.0)
        assert d.value_at(5.0).value == pytest.approx(0.0)
        assert d.minimum() == pytest.approx(0.0)

    def test_sqrt_units(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(0, (0, 1)), (10, (10, 1))])
        d = mpoint_distance(a, b)
        assert all(u.is_sqrt for u in d.units)
        assert d.value_at(3.0).value == pytest.approx(1.0)

    def test_defined_on_common_time_only(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(5, (0, 1)), (20, (10, 1))])
        d = mpoint_distance(a, b)
        assert d.deftime() == RangeSet([closed(5.0, 10.0)])

    def test_static_distance(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        d = mpoint_static_distance(a, Point(5, 0))
        assert d.minimum() == pytest.approx(0.0)
        assert d.value_at(0.0).value == pytest.approx(5.0)

    def test_closest_approach(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 10))])
        b = MovingPoint.from_waypoints([(0, (10, 0)), (10, (0, 10))])
        t, dmin = closest_approach(a, b)
        assert t == pytest.approx(5.0)
        assert dmin == pytest.approx(0.0)

    def test_closest_approach_parallel(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(0, (0, 3)), (10, (10, 3))])
        t, dmin = closest_approach(a, b)
        assert dmin == pytest.approx(3.0)
        assert t == pytest.approx(0.0)  # earliest minimal instant


class TestLiftedArithmetic:
    def test_add(self):
        iv = closed(0.0, 10.0)
        a = MovingReal([UReal(iv, 0, 1, 0)])
        b = MovingReal([UReal(iv, 0, 0, 5)])
        s = mreal_add(a, b)
        assert s.value_at(3.0).value == pytest.approx(8.0)

    def test_sub(self):
        iv = closed(0.0, 10.0)
        a = MovingReal([UReal(iv, 0, 2, 0)])
        b = MovingReal([UReal(iv, 0, 1, 0)])
        d = mreal_sub(a, b)
        assert d.value_at(4.0).value == pytest.approx(4.0)

    def test_add_refines_intervals(self):
        a = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])
        b = MovingReal([UReal(closed(5.0, 15.0), 0, 0, 1)])
        s = mreal_add(a, b)
        assert s.deftime() == RangeSet([closed(5.0, 10.0)])

    def test_add_sqrt_not_closed(self):
        iv = closed(0.0, 10.0)
        a = MovingReal([UReal(iv, 0, 0, 4, r=True)])
        b = MovingReal([UReal(iv, 0, 0, 1)])
        with pytest.raises(NotClosed):
            mreal_add(a, b)

    def test_scale(self):
        a = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])
        assert mreal_scale(a, 3.0).value_at(2.0).value == pytest.approx(6.0)


class TestLiftedComparison:
    def test_compare_with_constant(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])  # f(t) = t
        mb = mreal_compare(m, "<", 4.0)
        assert mb.when(True) == RangeSet([Interval(0.0, 4.0, True, False)])

    def test_compare_two_movings(self):
        iv = closed(0.0, 10.0)
        a = MovingReal([UReal(iv, 0, 1, 0)])  # t
        b = MovingReal([UReal(iv, 0, -1, 10)])  # 10 - t
        mb = mreal_compare(a, ">", b)
        assert mb.when(True) == RangeSet([Interval(5.0, 10.0, False, True)])

    def test_equality_instant(self):
        iv = closed(0.0, 10.0)
        a = MovingReal([UReal(iv, 0, 1, 0)])
        mb = mreal_compare(a, "==", 5.0)
        on = mb.when(True)
        assert len(on) == 1 and on.intervals[0].is_degenerate

    def test_touching_parabola(self):
        # (t-5)² > 0 everywhere except exactly t=5.
        m = MovingReal([UReal(closed(0.0, 10.0), 1, -10, 25)])
        mb = mreal_compare(m, ">", 0.0)
        off = mb.when(False)
        assert len(off) == 1
        assert off.intervals[0].is_degenerate
        assert off.intervals[0].s == pytest.approx(5.0)

    def test_sqrt_vs_constant(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0, r=True)])  # sqrt(t)
        mb = mreal_compare(m, ">=", 2.0)
        assert mb.when(True) == RangeSet([closed(4.0, 10.0)])


class TestMovingBoolOps:
    def mb(self, pieces):
        return MovingBool.piecewise(pieces)

    def test_and(self):
        a = self.mb([(closed(0.0, 10.0), True)])
        b = self.mb(
            [(closed(0.0, 4.0), True), (Interval(4.0, 10.0, False, True), False)]
        )
        got = mbool_and(a, b)
        assert got.when(True) == RangeSet([closed(0.0, 4.0)])

    def test_or(self):
        a = self.mb([(closed(0.0, 4.0), True), (Interval(4.0, 10.0, False, True), False)])
        b = self.mb([(closed(0.0, 2.0), False), (Interval(2.0, 10.0, False, True), True)])
        got = mbool_or(a, b)
        assert got.when(True) == RangeSet([closed(0.0, 10.0)])

    def test_not(self):
        a = self.mb([(closed(0.0, 4.0), True)])
        assert mbool_not(a).when(False) == RangeSet([closed(0.0, 4.0)])

    def test_and_defined_on_common_time(self):
        a = self.mb([(closed(0.0, 4.0), True)])
        b = self.mb([(closed(2.0, 8.0), True)])
        got = mbool_and(a, b)
        assert got.deftime() == RangeSet([closed(2.0, 4.0)])
