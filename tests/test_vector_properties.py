"""Property tests: vectorized kernels ≡ scalar reference algorithms.

The batch kernels of :mod:`repro.vector` are transcriptions of the
scalar unit-at-a-time code; these properties pin them together over
randomly generated fleets, including ⊥/gap instants and closed/open unit
boundaries, and query instants biased onto the boundaries themselves.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.plumbline import crossings_above, point_in_segset
from repro.geometry.segment import point_on_seg
from repro.ranges.interval import Interval
from repro.spatial.bbox import Cube, Rect
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.upoint import UPoint
from repro.temporal.ureal import UReal
from repro.vector.columns import BBoxColumn, UPointColumn, URealColumn
from repro.vector.kernels import (
    atinstant_batch,
    bbox_filter_batch,
    crossings_above_batch,
    inside_prefilter,
    locate_units,
    on_boundary_batch,
    segs_to_array,
    ureal_atinstant_batch,
    window_intervals_batch,
    window_times_batch,
)

coord = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
coef = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


@st.composite
def gapped_intervals(draw, max_units=4):
    """Sorted intervals with strict gaps and random closedness flags."""
    n = draw(st.integers(min_value=0, max_value=max_units))
    t = draw(st.floats(min_value=-50.0, max_value=50.0, allow_nan=False))
    out = []
    for _ in range(n):
        t += draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
        s = t
        t += draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
        out.append(
            Interval(s, t, draw(st.booleans()), draw(st.booleans()))
        )
    return out


@st.composite
def moving_points(draw):
    units = [
        UPoint.between(
            iv.s,
            (draw(coord), draw(coord)),
            iv.e,
            (draw(coord), draw(coord)),
            lc=iv.lc,
            rc=iv.rc,
        )
        for iv in draw(gapped_intervals())
    ]
    return MovingPoint(units)


@st.composite
def moving_reals(draw):
    # Non-sqrt quadratics: any coefficients are legal.
    units = [
        UReal(iv, draw(coef), draw(coef), draw(coef))
        for iv in draw(gapped_intervals())
    ]
    return MovingReal(units)


def probe_instants(draw, fleet, k=3):
    """Query instants biased onto unit boundaries (the sharp cases)."""
    boundaries = [u.interval.s for m in fleet for u in m.units] + [
        u.interval.e for m in fleet for u in m.units
    ]
    out = [draw(st.floats(min_value=-80.0, max_value=80.0, allow_nan=False))]
    for _ in range(k):
        if boundaries and draw(st.booleans()):
            out.append(
                boundaries[draw(st.integers(0, len(boundaries) - 1))]
            )
        else:
            out.append(
                draw(st.floats(min_value=-80.0, max_value=80.0, allow_nan=False))
            )
    return out


@st.composite
def point_fleets_with_instants(draw):
    fleet = draw(st.lists(moving_points(), min_size=1, max_size=6))
    return fleet, probe_instants(draw, fleet)


@st.composite
def real_fleets_with_instants(draw):
    fleet = draw(st.lists(moving_reals(), min_size=1, max_size=6))
    return fleet, probe_instants(draw, fleet)


class TestAtinstantEquivalence:
    @given(point_fleets_with_instants())
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_atinstant(self, fleet_and_ts):
        fleet, instants = fleet_and_ts
        col = UPointColumn.from_mappings(fleet)
        for t in instants:
            xs, ys, defined = atinstant_batch(col, t)
            for i, m in enumerate(fleet):
                p = m.value_at(t)
                if p is None:
                    assert not defined[i], (i, t)
                    assert np.isnan(xs[i]) and np.isnan(ys[i])
                else:
                    assert defined[i], (i, t)
                    assert xs[i] == p.x and ys[i] == p.y

    @given(real_fleets_with_instants())
    @settings(max_examples=150, deadline=None)
    def test_matches_scalar_ureal(self, fleet_and_ts):
        fleet, instants = fleet_and_ts
        col = URealColumn.from_mappings(fleet)
        for t in instants:
            vs, defined = ureal_atinstant_batch(col, t)
            for i, m in enumerate(fleet):
                v = m.value_at(t)
                if v is None:
                    assert not defined[i], (i, t)
                else:
                    assert defined[i], (i, t)
                    assert vs[i] == v.value

    @given(point_fleets_with_instants())
    @settings(max_examples=150, deadline=None)
    def test_locate_units_matches_unit_at(self, fleet_and_ts):
        fleet, instants = fleet_and_ts
        col = UPointColumn.from_mappings(fleet)
        for t in instants:
            unit, defined = locate_units(col, t)
            for i, m in enumerate(fleet):
                scalar = m.unit_at(t)
                if scalar is None:
                    assert not defined[i], (i, t)
                else:
                    assert defined[i], (i, t)
                    j = int(unit[i])
                    got = Interval(
                        float(col.starts[j]), float(col.ends[j]),
                        bool(col.lc[j]), bool(col.rc[j]),
                    )
                    assert got == scalar.interval, (i, t)

    @given(st.lists(moving_points(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_column_round_trip(self, fleet):
        assert UPointColumn.from_mappings(fleet).to_mappings() == fleet


@st.composite
def cubes(draw):
    xa, xb = sorted((draw(coord), draw(coord)))
    ya, yb = sorted((draw(coord), draw(coord)))
    ts = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
    ta, tb = sorted((draw(ts), draw(ts)))
    return Cube(xa, ya, ta, xb, yb, tb)


class TestBBoxFilterEquivalence:
    @given(st.lists(moving_points(), min_size=1, max_size=6), cubes())
    @settings(max_examples=150, deadline=None)
    def test_bbox_filter_matches_scalar(self, fleet, cube):
        col = BBoxColumn.from_mappings(fleet)
        mask = bbox_filter_batch(col, cube)
        hits = {int(k) for k, hit in zip(col.keys, mask) if hit}
        expected = {
            i
            for i, m in enumerate(fleet)
            if m.units and m.bounding_cube().intersects(cube)
        }
        assert hits == expected


@st.composite
def simple_regions(draw):
    """A convex-ish polygon: a radial perturbation of a regular n-gon."""
    import math

    n = draw(st.integers(min_value=3, max_value=8))
    cx = draw(st.floats(min_value=-20.0, max_value=20.0, allow_nan=False))
    cy = draw(st.floats(min_value=-20.0, max_value=20.0, allow_nan=False))
    radii = draw(
        st.lists(
            st.floats(min_value=2.0, max_value=20.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    verts = [
        (
            cx + r * math.cos(2 * math.pi * k / n),
            cy + r * math.sin(2 * math.pi * k / n),
        )
        for k, r in enumerate(radii)
    ]
    return Region.polygon(verts)


class TestPlumblineEquivalence:
    @given(
        simple_regions(),
        st.lists(st.tuples(coord, coord), min_size=1, max_size=12),
    )
    @settings(max_examples=150, deadline=None)
    def test_crossings_match_scalar(self, region, pts):
        segs = list(region.segments())
        counts = crossings_above_batch(pts, segs)
        for p, n in zip(pts, counts):
            assert n == crossings_above(p, segs)

    @given(
        simple_regions(),
        st.lists(st.tuples(coord, coord), min_size=1, max_size=12),
    )
    @settings(max_examples=150, deadline=None)
    def test_inside_matches_point_in_segset(self, region, pts):
        segs = list(region.segments())
        inside = inside_prefilter(pts, region)
        for p, got in zip(pts, inside):
            assert bool(got) == point_in_segset(p, segs)

    @given(simple_regions(), st.lists(st.tuples(coord, coord), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_boundary_vertices_hit_scalar_verdict(self, region, pts):
        # Probe the region's own vertices: the sharpest boundary cases.
        segs = list(region.segments())
        vertices = [tuple(s[0]) for s in segs][:8]
        probes = vertices + list(pts)
        inside = inside_prefilter(probes, region)
        for p, got in zip(probes, inside):
            assert bool(got) == point_in_segset(p, segs)

    @given(
        simple_regions(),
        st.lists(st.tuples(coord, coord), min_size=1, max_size=8),
    )
    @settings(max_examples=150, deadline=None)
    def test_on_boundary_matches_point_on_seg(self, region, pts):
        segs = list(region.segments())
        # Include actual vertices: points genuinely on the boundary.
        probes = [tuple(s[0]) for s in segs][:4] + list(pts)
        got = on_boundary_batch(probes, segs)
        for p, g in zip(probes, got):
            assert bool(g) == any(point_on_seg(p, s) for s in segs), p

    @given(simple_regions())
    @settings(max_examples=60, deadline=None)
    def test_segs_to_array_round_trip(self, region):
        segs = list(region.segments())
        arr = segs_to_array(segs)
        assert arr.shape == (len(segs), 4)
        back = [((r[0], r[1]), (r[2], r[3])) for r in arr.tolist()]
        assert back == [
            ((s[0][0], s[0][1]), (s[1][0], s[1][1])) for s in segs
        ]

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_empty_segment_set(self, pts):
        counts = crossings_above_batch(pts, segs_to_array([]))
        assert not counts.any()


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@st.composite
def windows(draw):
    ts = st.floats(min_value=-80.0, max_value=80.0, allow_nan=False)
    t0, t1 = sorted((draw(ts), draw(ts)))
    return t0, t1


class TestWindowEquivalence:
    @given(st.lists(moving_points(), min_size=1, max_size=6), rects())
    @settings(max_examples=150, deadline=None)
    def test_window_times_batch_matches_scalar(self, fleet, rect):
        from repro.ops.window import upoint_within_rect_times

        col = UPointColumn.from_mappings(fleet)
        a, b, lc, rc, ok = window_times_batch(col, rect)
        units = [u for m in fleet for u in m.units]
        assert len(units) == col.n_units
        for j, u in enumerate(units):
            iv = upoint_within_rect_times(u, rect)
            if iv is None:
                assert not ok[j], (j, rect)
            else:
                assert ok[j], (j, rect)
                got = Interval(
                    float(a[j]), float(b[j]), bool(lc[j]), bool(rc[j])
                )
                assert got == iv, (j, rect)

    @given(
        st.lists(moving_points(), min_size=1, max_size=6),
        rects(),
        windows(),
    )
    @settings(max_examples=150, deadline=None)
    def test_window_intervals_batch_matches_scalar(
        self, fleet, rect, window
    ):
        from repro.ops.window import mpoint_within_rect_times
        from repro.ranges.rangeset import RangeSet

        t0, t1 = window
        col = UPointColumn.from_mappings(fleet)
        owners, s, e, lc, rc = window_intervals_batch(col, rect, t0, t1)
        per_object = {}
        for k in range(len(owners)):
            per_object.setdefault(int(owners[k]), []).append(
                Interval(
                    float(s[k]), float(e[k]), bool(lc[k]), bool(rc[k])
                )
            )
        clip = RangeSet([Interval(t0, t1)])
        for i, m in enumerate(fleet):
            expected = mpoint_within_rect_times(m, rect).intersection(clip)
            got = RangeSet(per_object.get(i, []))
            assert got == expected, (i, rect, t0, t1)
