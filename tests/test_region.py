"""Tests for cycles, faces, regions, and close() (Section 3.2.2, Figure 3)."""

import pytest

from repro.errors import InvalidValue
from repro.geometry.segment import make_seg
from repro.spatial.region import Cycle, Face, Region, close_region


def square_cycle(x0=0.0, y0=0.0, size=4.0):
    return Cycle.from_vertices(
        [(x0, y0), (x0 + size, y0), (x0 + size, y0 + size), (x0, y0 + size)]
    )


class TestCycle:
    def test_from_vertices(self):
        c = square_cycle()
        assert len(c) == 4
        assert len(c.vertices) == 4

    def test_from_vertices_closed_ring_accepted(self):
        c = Cycle.from_vertices([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(c) == 3

    def test_needs_three_segments(self):
        with pytest.raises(InvalidValue):
            Cycle([make_seg((0, 0), (1, 0)), make_seg((1, 0), (0, 0.5))])

    def test_rejects_self_intersection(self):
        # Bowtie: two edges properly cross.
        with pytest.raises(InvalidValue):
            Cycle.from_vertices([(0, 0), (2, 2), (2, 0), (0, 2)])

    def test_rejects_touch(self):
        # A vertex touching the interior of another edge.
        with pytest.raises(InvalidValue):
            Cycle.from_vertices([(0, 0), (4, 0), (4, 4), (2, 0)])

    def test_rejects_disconnected(self):
        segs = list(square_cycle().segments) + list(square_cycle(10, 10).segments)
        with pytest.raises(InvalidValue):
            Cycle(segs)

    def test_rejects_wrong_degree(self):
        segs = list(square_cycle().segments) + [make_seg((0, 0), (2, 2))]
        with pytest.raises(InvalidValue):
            Cycle(segs)

    def test_area_perimeter(self):
        c = square_cycle(size=4.0)
        assert c.area() == pytest.approx(16.0)
        assert c.perimeter() == pytest.approx(16.0)

    def test_contains_point(self):
        c = square_cycle()
        assert c.contains_point((2, 2))
        assert c.contains_point((0, 2))  # boundary
        assert not c.contains_point((0, 2), boundary_counts=False)
        assert not c.contains_point((5, 2))

    def test_interior_sample(self):
        c = square_cycle()
        p = c.interior_sample()
        assert c.contains_point(p, boundary_counts=False)

    def test_edge_inside(self):
        outer = square_cycle(0, 0, 10)
        inner = square_cycle(2, 2, 2)
        assert inner.edge_inside(outer)
        assert not outer.edge_inside(inner)

    def test_edge_inside_rejects_overlapping_edges(self):
        outer = square_cycle(0, 0, 10)
        flush = square_cycle(0, 0, 4)  # shares boundary segments with outer
        assert not flush.edge_inside(outer)

    def test_edge_disjoint(self):
        a = square_cycle(0, 0, 2)
        b = square_cycle(5, 5, 2)
        assert a.edge_disjoint(b)

    def test_edge_disjoint_fails_for_nested(self):
        outer = square_cycle(0, 0, 10)
        inner = square_cycle(2, 2, 2)
        assert not outer.edge_disjoint(inner)

    def test_touch_at_point_is_edge_disjoint(self):
        # Two squares sharing exactly one corner: allowed.
        a = square_cycle(0, 0, 2)
        b = square_cycle(2, 2, 2)
        assert a.edge_disjoint(b)


class TestFace:
    def test_face_with_hole(self):
        f = Face(square_cycle(0, 0, 10), [square_cycle(4, 4, 2)])
        assert f.area() == pytest.approx(100 - 4)
        assert f.perimeter() == pytest.approx(40 + 8)

    def test_hole_outside_rejected(self):
        with pytest.raises(InvalidValue):
            Face(square_cycle(0, 0, 4), [square_cycle(10, 10, 2)])

    def test_overlapping_holes_rejected(self):
        with pytest.raises(InvalidValue):
            Face(
                square_cycle(0, 0, 10),
                [square_cycle(2, 2, 3), square_cycle(3, 3, 3)],
            )

    def test_contains_point_semantics(self):
        # closure(outer \ holes): hole boundary in, hole interior out.
        f = Face(square_cycle(0, 0, 10), [square_cycle(4, 4, 2)])
        assert f.contains_point((1, 1))
        assert f.contains_point((4, 5))  # on hole boundary
        assert not f.contains_point((5, 5))  # inside the hole

    def test_cycles_property(self):
        hole = square_cycle(4, 4, 2)
        f = Face(square_cycle(0, 0, 10), [hole])
        assert f.cycles[0] == f.outer
        assert hole in f.cycles


class TestRegion:
    def test_empty(self):
        r = Region()
        assert not r and len(r) == 0
        assert r.area() == 0.0

    def test_polygon_constructor(self):
        r = Region.polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert r.area() == pytest.approx(16.0)

    def test_box_constructor(self):
        r = Region.box(1, 1, 3, 5)
        assert r.area() == pytest.approx(8.0)

    def test_multi_face(self):
        r = Region(
            [
                Face(square_cycle(0, 0, 2)),
                Face(square_cycle(10, 10, 3)),
            ]
        )
        assert len(r) == 2
        assert r.area() == pytest.approx(4 + 9)

    def test_overlapping_faces_rejected(self):
        with pytest.raises(InvalidValue):
            Region([Face(square_cycle(0, 0, 4)), Face(square_cycle(2, 2, 4))])

    def test_face_inside_hole_allowed(self):
        # An island within a lake within an island.
        outer = Face(square_cycle(0, 0, 10), [square_cycle(2, 2, 6)])
        island = Face(square_cycle(4, 4, 2))
        r = Region([outer, island])
        assert len(r) == 2
        assert r.contains_point((5, 5))  # on the island
        assert not r.contains_point((3, 5))  # in the lake

    def test_contains_point_multi(self):
        r = Region([Face(square_cycle(0, 0, 2)), Face(square_cycle(10, 0, 2))])
        assert r.contains_point((1, 1))
        assert r.contains_point((11, 1))
        assert not r.contains_point((5, 1))

    def test_bbox(self):
        r = Region([Face(square_cycle(0, 0, 2)), Face(square_cycle(10, 10, 2))])
        bb = r.bbox()
        assert (bb.xmin, bb.ymin, bb.xmax, bb.ymax) == (0, 0, 12, 12)

    def test_bbox_empty_raises(self):
        with pytest.raises(InvalidValue):
            Region().bbox()

    def test_equality_canonical(self):
        a = Region([Face(square_cycle(0, 0, 2)), Face(square_cycle(5, 5, 2))])
        b = Region([Face(square_cycle(5, 5, 2)), Face(square_cycle(0, 0, 2))])
        assert a == b

    def test_halfsegments_sorted(self):
        r = Region.polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        keys = [h.sort_key() for h in r.halfsegments()]
        assert keys == sorted(keys)


class TestCloseRegion:
    def test_close_simple(self):
        r = Region.polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert close_region(r.segments()) == r

    def test_close_with_hole(self):
        r = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)], holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]]
        )
        rebuilt = close_region(r.segments())
        assert rebuilt == r
        assert len(rebuilt.faces[0].holes) == 1

    def test_close_multi_face(self):
        r = Region([Face(square_cycle(0, 0, 2)), Face(square_cycle(5, 5, 2))])
        assert close_region(r.segments()) == r

    def test_close_nested_island(self):
        outer = Face(square_cycle(0, 0, 10), [square_cycle(2, 2, 6)])
        island = Face(square_cycle(4, 4, 2))
        r = Region([outer, island])
        rebuilt = close_region(r.segments())
        assert rebuilt.area() == pytest.approx(r.area())
        assert len(rebuilt.faces) == 2

    def test_close_empty(self):
        assert close_region([]) == Region()

    def test_close_odd_degree_rejected(self):
        with pytest.raises(InvalidValue):
            close_region([make_seg((0, 0), (1, 0))])
