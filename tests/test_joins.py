"""Tests for SQL JOIN ... ON and the spatio-temporal join APIs."""

import pytest

from repro.db import Database
from repro.errors import QueryError
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.temporal.uregion import URegion
from repro.ranges.interval import closed
from repro.ops.joins import closest_pairs, inside_pairs
from repro.workloads.trajectories import random_flights


@pytest.fixture
def join_db():
    db = Database()
    planes = db.create_relation(
        "planes", [("airline", "string"), ("id", "string"), ("flight", "mpoint")]
    )
    airlines = db.create_relation(
        "airlines", [("code", "string"), ("country", "string")]
    )
    planes.insert(["LH", "LH1", MovingPoint.from_waypoints([(0, (0, 0)), (10, (9, 0))])])
    planes.insert(["LH", "LH2", MovingPoint.from_waypoints([(0, (0, 5)), (10, (9, 5))])])
    planes.insert(["AF", "AF1", MovingPoint.from_waypoints([(0, (0, 9)), (10, (9, 9))])])
    planes.insert(["XX", "XX1", MovingPoint.from_waypoints([(0, (0, 1)), (10, (9, 1))])])
    airlines.insert(["LH", "Germany"])
    airlines.insert(["AF", "France"])
    return db


class TestSQLJoin:
    def test_hash_join(self, join_db):
        rows = join_db.query(
            "SELECT p.id, a.country FROM planes p "
            "JOIN airlines a ON p.airline = a.code ORDER BY p.id"
        )
        assert [(r["p.id"].value, r["a.country"].value) for r in rows] == [
            ("AF1", "France"), ("LH1", "Germany"), ("LH2", "Germany"),
        ]

    def test_join_is_inner(self, join_db):
        # XX has no airline row: dropped.
        rows = join_db.query(
            "SELECT p.id FROM planes p JOIN airlines a ON p.airline = a.code"
        )
        ids = {r["p.id"].value for r in rows}
        assert "XX1" not in ids and len(ids) == 3

    def test_join_key_order_irrelevant(self, join_db):
        a = join_db.query(
            "SELECT p.id FROM planes p JOIN airlines a ON p.airline = a.code"
        )
        b = join_db.query(
            "SELECT p.id FROM planes p JOIN airlines a ON a.code = p.airline"
        )
        assert sorted(r["p.id"].value for r in a) == sorted(
            r["p.id"].value for r in b
        )

    def test_non_equi_join_condition(self, join_db):
        rows = join_db.query(
            "SELECT p.id FROM planes p "
            "JOIN airlines a ON a.country = 'France' AND p.airline = a.code"
        )
        assert [r["p.id"].value for r in rows] == ["AF1"]

    def test_join_then_where_and_aggregate(self, join_db):
        rows = join_db.query(
            "SELECT a.country, count(*) AS n FROM planes p "
            "JOIN airlines a ON p.airline = a.code "
            "GROUP BY a.country ORDER BY a.country"
        )
        assert [(r["a.country"], r["n"]) for r in rows] == [
            ("France", 1), ("Germany", 2),
        ]

    def test_join_missing_on_rejected(self, join_db):
        with pytest.raises(QueryError):
            join_db.query("SELECT p.id FROM planes p JOIN airlines a")


class TestClosestPairs:
    def test_index_matches_nested(self):
        flights = {f"F{i}": f for i, f in enumerate(random_flights(12, legs=4, seed=3))}
        with_index = closest_pairs(flights, threshold=800.0, use_index=True)
        without = closest_pairs(flights, threshold=800.0, use_index=False)
        assert with_index == without

    def test_threshold_respected(self):
        flights = {f"F{i}": f for i, f in enumerate(random_flights(10, legs=4, seed=8))}
        for _a, _b, _t, d in closest_pairs(flights, threshold=500.0):
            assert d < 500.0

    def test_simple_pair(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(0, (10, 0)), (10, (0, 0))])
        got = closest_pairs({"a": a, "b": b}, threshold=1.0)
        assert len(got) == 1
        key_a, key_b, t, d = got[0]
        assert (key_a, key_b) == ("a", "b")
        assert t == pytest.approx(5.0)
        assert d == pytest.approx(0.0)


class TestInsidePairs:
    def test_simple_hit(self):
        mp = MovingPoint.from_waypoints([(0, (-5, 1)), (10, (15, 1))])
        mr = MovingRegion(
            [URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))]
        )
        got = inside_pairs({"p": mp}, {"r": mr})
        assert len(got) == 1
        pk, rk, times = got[0]
        assert (pk, rk) == ("p", "r")
        assert times.total_length() == pytest.approx(2.0)

    def test_index_matches_nested(self):
        points = {
            f"P{i}": f for i, f in enumerate(random_flights(6, legs=3, seed=21))
        }
        regions = {}
        for k in range(3):
            x = 2000.0 + k * 2500.0
            regions[f"R{k}"] = MovingRegion(
                [
                    URegion.stationary(
                        closed(0.0, 2000.0), Region.box(x, 2000, x + 2000, 6000)
                    )
                ]
            )
        assert inside_pairs(points, regions, use_index=True) == inside_pairs(
            points, regions, use_index=False
        )

    def test_miss(self):
        mp = MovingPoint.from_waypoints([(0, (100, 100)), (10, (110, 100))])
        mr = MovingRegion(
            [URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 4, 4))]
        )
        assert inside_pairs({"p": mp}, {"r": mr}) == []
