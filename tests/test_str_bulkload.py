"""STR bulk loading (RTree3D) and unit-index boundary cases.

The STR-packed tree must be *observably* no worse than the incremental
tree: identical search results and no more node visits per query
(asserted via the ``rtree.nodes_visited`` counter), while being far
cheaper to build — the build-speed claim lives in the benchmarks, the
equivalence claims live here.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.index.rtree import RTree3D
from repro.index.unitindex import MovingObjectIndex
from repro.spatial.bbox import Cube, Rect
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint


def cube_at(x, y, t, size=1.0):
    return Cube(x, y, t, x + size, y + size, t + size)


def random_cubes(rng, n, extent=100.0):
    return [
        (
            cube_at(
                rng.uniform(0, extent),
                rng.uniform(0, extent),
                rng.uniform(0, extent),
                size=rng.uniform(0.5, 5.0),
            ),
            i,
        )
        for i in range(n)
    ]


def node_visits(tree, queries):
    with obs.capture() as counters:
        for q in queries:
            tree.search_list(q)
        return counters.snapshot()["counters"].get("rtree.nodes_visited", 0)


class TestSTRBulkLoad:
    def test_empty(self):
        tree = RTree3D.bulk_load([])
        assert len(tree) == 0
        assert tree.search_list(cube_at(0, 0, 0)) == []

    def test_single_entry(self):
        tree = RTree3D.bulk_load([(cube_at(0, 0, 0), "a")])
        assert len(tree) == 1
        assert tree.search_list(cube_at(0.5, 0.5, 0.5)) == ["a"]
        assert tree.search_list(cube_at(10, 10, 10)) == []

    def test_matches_incremental_results(self):
        rng = random.Random(42)
        entries = random_cubes(rng, 500)
        packed = RTree3D.bulk_load(entries, max_entries=6)
        grown = RTree3D(max_entries=6)
        for c, i in entries:
            grown.insert(c, i)
        assert len(packed) == len(grown) == 500
        for _ in range(30):
            q = cube_at(
                rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100),
                size=rng.uniform(2.0, 15.0),
            )
            assert sorted(packed.search(q)) == sorted(grown.search(q))

    def test_node_visits_no_worse_than_incremental(self):
        rng = random.Random(2000)
        entries = random_cubes(rng, 800)
        packed = RTree3D.bulk_load(entries, max_entries=8)
        grown = RTree3D(max_entries=8)
        for c, i in entries:
            grown.insert(c, i)
        queries = [
            cube_at(
                rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100),
                size=10.0,
            )
            for _ in range(50)
        ]
        assert node_visits(packed, queries) <= node_visits(grown, queries)

    def test_bulk_loaded_counter(self):
        entries = random_cubes(random.Random(1), 40)
        with obs.capture() as counters:
            RTree3D.bulk_load(entries)
            snap = counters.snapshot()["counters"]
        assert snap.get("rtree.bulk_loaded") == 40

    def test_insert_after_bulk_load(self):
        entries = random_cubes(random.Random(3), 100)
        tree = RTree3D.bulk_load(entries, max_entries=5)
        tree.insert(cube_at(200, 200, 200), "late")
        assert len(tree) == 101
        assert tree.search_list(cube_at(200.2, 200.2, 200.2)) == ["late"]
        # Old entries still reachable after the packed tree mutates.
        q = cube_at(0, 0, 0, size=100.0)
        assert sorted(tree.search(q)) == sorted(
            i for c, i in entries if c.intersects(q)
        )

    def test_packed_tree_is_near_full(self):
        entries = random_cubes(random.Random(9), 640)
        packed = RTree3D.bulk_load(entries, max_entries=8)
        grown = RTree3D(max_entries=8)
        for c, i in entries:
            grown.insert(c, i)
        assert packed.node_count() <= grown.node_count()

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=120))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, seed, n):
        rng = random.Random(seed)
        entries = random_cubes(rng, n)
        packed = RTree3D.bulk_load(entries, max_entries=4)
        grown = RTree3D(max_entries=4)
        for c, i in entries:
            grown.insert(c, i)
        assert len(packed) == len(grown) == n
        for _ in range(5):
            q = cube_at(
                rng.uniform(-5, 100), rng.uniform(-5, 100), rng.uniform(-5, 100),
                size=rng.uniform(1.0, 30.0),
            )
            assert sorted(packed.search(q)) == sorted(grown.search(q))


def flight(points, flags=None):
    """A moving point through ``points`` = [(t, x, y), ...].

    ``flags`` gives per-unit ``(lc, rc)`` pairs; the default is the
    standard half-open chain ``[s, e)`` with the last unit closed.
    """
    legs = list(zip(points, points[1:]))
    if flags is None:
        flags = [(True, i == len(legs) - 1) for i in range(len(legs))]
    units = []
    for ((t0, x0, y0), (t1, x1, y1)), (lc, rc) in zip(legs, flags):
        units.append(
            UPoint.between(t0, (x0, y0), t1, (x1, y1), lc=lc, rc=rc)
        )
    return MovingPoint(units)


class TestUnitIndexBoundaries:
    def test_empty_mapping(self):
        idx = MovingObjectIndex()
        idx.add("empty", MovingPoint([]))
        assert len(idx) == 1
        assert idx.unit_entries == 0
        assert idx.candidates_at(Rect(-1, -1, 1, 1), 0.0) == set()

    def test_single_unit(self):
        idx = MovingObjectIndex()
        idx.add("solo", flight([(0, 0, 0), (10, 10, 10)]))
        assert idx.unit_entries == 1
        assert idx.candidates_at(Rect(-1, -1, 11, 11), 5.0) == {"solo"}
        assert idx.candidates_at(Rect(-1, -1, 11, 11), 20.0) == set()

    def test_touching_intervals_at_boundary(self):
        # Two consecutive units share t=5; the cube filter is closed, so
        # the boundary instant reports the object regardless of whether
        # the unit intervals are open or closed there (filter step only —
        # refinement decides exact containment).
        # (first unit's rc, second unit's lc): closed/open owner of t=5,
        # or open from both sides.
        for rc, lc in ((False, True), (True, False), (False, False)):
            idx = MovingObjectIndex()
            idx.add(
                "m",
                flight(
                    [(0, 0, 0), (5, 5, 5), (10, 0, 0)],
                    flags=[(True, rc), (lc, True)],
                ),
            )
            assert idx.unit_entries == 2
            everywhere = Rect(-1, -1, 6, 6)
            assert idx.candidates_at(everywhere, 5.0) == {"m"}, (lc, rc)
            # Both backends see identical cube sets.
            cube = Cube(-1, -1, 5.0, 6, 6, 5.0)
            assert idx.candidates_in_cube(cube, backend="scalar") == \
                idx.candidates_in_cube(cube, backend="vector")

    def test_bulk_load_matches_add(self):
        flights = {
            f"f{k}": flight(
                [
                    (t, k * 3.0 + t, (t // 2 % 2) * 5.0)  # zigzag in y
                    for t in range(0, 9, 2)
                ]
            )
            for k in range(12)
        }
        incremental = MovingObjectIndex()
        for key, mp in flights.items():
            incremental.add(key, mp)
        bulk = MovingObjectIndex()
        bulk.bulk_load(flights.items())
        assert len(bulk) == len(incremental)
        assert bulk.unit_entries == incremental.unit_entries
        for t in (0.0, 3.0, 8.0, 20.0):
            rect = Rect(-100, -100, 100, 100)
            assert bulk.candidates_at(rect, t) == \
                incremental.candidates_at(rect, t), t

    def test_add_after_bulk_load(self):
        idx = MovingObjectIndex()
        idx.bulk_load([("a", flight([(0, 0, 0), (5, 5, 5)]))])
        idx.add("b", flight([(0, 50, 50), (5, 55, 55)]))
        assert len(idx) == 2
        assert idx.candidates_at(Rect(49, 49, 56, 56), 2.0) == {"b"}
