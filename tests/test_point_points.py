"""Tests for the point and points spatial types (Section 3.2.2)."""

import pytest

from repro.errors import InvalidValue, TypeMismatch, UndefinedValue
from repro.spatial.point import Point
from repro.spatial.points import Points


class TestPoint:
    def test_coordinates(self):
        p = Point(1.0, 2.0)
        assert p.x == 1.0 and p.y == 2.0 and p.vec == (1.0, 2.0)

    def test_undefined(self):
        p = Point()
        assert not p.defined
        with pytest.raises(UndefinedValue):
            p.vec

    def test_partial_coordinates_rejected(self):
        with pytest.raises(TypeMismatch):
            Point(1.0, None)

    def test_nonfinite_rejected(self):
        with pytest.raises(InvalidValue):
            Point(float("nan"), 0.0)

    def test_lexicographic_order(self):
        # The order of Section 3.2.2: by x, then by y.
        assert Point(0, 5) < Point(1, 0)
        assert Point(1, 0) < Point(1, 1)
        assert not Point(1, 1) < Point(1, 1)

    def test_undefined_sorts_first(self):
        assert Point() < Point(-1e9, -1e9)

    def test_distance(self):
        assert Point(0, 0).distance(Point(3, 4)) == 5.0

    def test_hash_eq(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert len({Point(1, 2), Point(1, 2), Point()}) == 2

    def test_from_vec(self):
        assert Point.from_vec((3, 4)) == Point(3, 4)

    def test_immutable(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p._xy = (0, 0)


class TestPoints:
    def test_empty_is_valid(self):
        ps = Points()
        assert len(ps) == 0 and not ps

    def test_deduplication(self):
        ps = Points([(1, 2), (1, 2), (3, 4)])
        assert len(ps) == 2

    def test_canonical_order(self):
        ps = Points([(3, 4), (1, 2), (1, 0)])
        assert list(ps.vecs) == [(1.0, 0.0), (1.0, 2.0), (3.0, 4.0)]

    def test_equality_is_array_equality(self):
        assert Points([(1, 2), (3, 4)]) == Points([(3, 4), (1, 2)])

    def test_accepts_point_objects(self):
        ps = Points([Point(1, 2), (3, 4)])
        assert (1.0, 2.0) in ps

    def test_contains(self):
        ps = Points([(1, 2)])
        assert (1, 2) in ps and Point(1, 2) in ps
        assert (9, 9) not in ps

    def test_union_intersection_difference(self):
        a = Points([(0, 0), (1, 1)])
        b = Points([(1, 1), (2, 2)])
        assert a.union(b) == Points([(0, 0), (1, 1), (2, 2)])
        assert a.intersection(b) == Points([(1, 1)])
        assert a.difference(b) == Points([(0, 0)])

    def test_bbox(self):
        bb = Points([(0, 1), (4, 3)]).bbox()
        assert (bb.xmin, bb.ymin, bb.xmax, bb.ymax) == (0, 1, 4, 3)

    def test_bbox_of_empty_raises(self):
        with pytest.raises(InvalidValue):
            Points().bbox()

    def test_min_distance(self):
        a = Points([(0, 0)])
        b = Points([(3, 4), (10, 0)])
        assert a.min_distance(b) == 5.0

    def test_center(self):
        assert Points([(0, 0), (2, 2)]).center() == Point(1, 1)

    def test_iter_yields_points(self):
        ps = Points([(1, 2)])
        assert list(ps) == [Point(1, 2)]
