"""Persistent column store (:mod:`repro.vector.store`).

Covers the tentpole guarantees of the mmap store:

* round-trip fidelity — the file payload is byte-identical to the
  in-memory column records (a hypothesis property pins the format);
* the corruption matrix — a bit flip in any column file or the
  manifest is detected, and WAL recovery *rebuilds* the store from the
  recovered relation rather than serving the flipped bytes;
* torn writes — every registered ``colstore.*`` failpoint leaves the
  store either at the old consistent generation or detectably torn,
  and ``load_or_rebuild`` repairs both shapes;
* backend parity — query results with a store configured are identical
  across the scalar, vector, and parallel backends.
"""

import os
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, obs
from repro.db.catalog import Database
from repro.errors import CorruptColumnError, SimulatedCrash
from repro.storage.wal import Wal
from repro.temporal.mapping import MovingPoint
from repro.vector.cache import Fleet, clear_cache
from repro.vector.fleet import fleet_atinstant, set_backend
from repro.vector.kernels import atinstant_batch
from repro.vector.store import (
    COLUMN_KINDS,
    HEADER,
    MANIFEST_NAME,
    _BUILDERS,
    _LAYOUT,
    _column_records,
    ColumnStore,
    clear_store,
    set_store,
)
from repro.workloads.trajectories import random_flights

SCHEMA = [("name", "string"), ("track", "mpoint")]


@pytest.fixture(autouse=True)
def _clean_state():
    faults.disarm()
    faults.reset_fired()
    obs.enable()
    obs.reset()
    clear_store()
    clear_cache()
    set_backend("scalar")
    yield
    faults.disarm()
    faults.reset_fired()
    clear_store()
    clear_cache()
    set_backend("scalar")
    obs.reset()
    obs.disable()


def counters():
    return obs.snapshot()["counters"]


def make_mappings(n=12, seed=7):
    return random_flights(n, legs=3, seed=seed)


def mappings_for(kind, mappings):
    """Kind-appropriate inputs: moving reals are derived values (here,
    distance to the origin), point/bbox kinds take the flights as-is."""
    if kind == "ureal":
        from repro.ops.distance import mpoint_static_distance
        from repro.spatial.point import Point

        return [mpoint_static_distance(m, Point(0.0, 0.0)) for m in mappings]
    return mappings


def save_all(root, mappings):
    store = ColumnStore(os.fspath(root))
    for kind in COLUMN_KINDS:
        src = mappings_for(kind, mappings)
        store.save(kind, _BUILDERS[kind](src), n_objects=len(src))
    return store


def flip_byte(path, offset):
    with open(path, "r+b") as fh:
        fh.seek(offset)
        b = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([b[0] ^ 0xFF]))


#: Every (kind, file name) pair the store writes — the corruption matrix.
ALL_FILES = [
    (kind, name)
    for kind in COLUMN_KINDS
    for name, _dtype in _LAYOUT[kind]
]


class TestRoundTrip:
    @pytest.mark.parametrize("kind", COLUMN_KINDS)
    def test_file_payload_is_in_memory_bytes(self, tmp_path, kind):
        mappings = make_mappings()
        store = save_all(tmp_path, mappings)
        built = _BUILDERS[kind](mappings_for(kind, mappings))
        for (name, dtype), rec in zip(
            _LAYOUT[kind], _column_records(kind, built)
        ):
            with open(store.path(name), "rb") as fh:
                fh.seek(HEADER.size)
                on_disk = fh.read()
            assert on_disk == np.ascontiguousarray(
                rec, dtype=dtype
            ).tobytes()

    @pytest.mark.parametrize("kind", COLUMN_KINDS)
    def test_loaded_column_arrays_bit_identical(self, tmp_path, kind):
        mappings = make_mappings()
        store = save_all(tmp_path, mappings)
        built = _BUILDERS[kind](mappings_for(kind, mappings))
        loaded = store.load(kind)
        for (_name, dtype), built_rec, loaded_rec in zip(
            _LAYOUT[kind],
            _column_records(kind, built),
            _column_records(kind, loaded),
        ):
            assert (
                np.ascontiguousarray(built_rec, dtype=dtype).tobytes()
                == np.ascontiguousarray(loaded_rec, dtype=dtype).tobytes()
            )
        assert loaded.source is not None
        assert loaded.source.kind == kind
        assert counters()["colstore.hits"] == 1

    def test_kernel_results_identical_from_disk(self, tmp_path):
        mappings = make_mappings()
        store = save_all(tmp_path, mappings)
        built = _BUILDERS["upoint"](mappings)
        loaded = store.load("upoint")
        for t in (0.0, 0.5, 1.0, 2.5):
            bx, by, bd = atinstant_batch(built, t)
            lx, ly, ld = atinstant_batch(loaded, t)
            assert bx.tobytes() == lx.tobytes()
            assert by.tobytes() == ly.tobytes()
            assert np.array_equal(bd, ld)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=1, max_value=8),
    )
    def test_round_trip_property(self, seed, n):
        """Format pin: save→load reproduces the exact record bytes for
        arbitrary workloads, for every column kind."""
        import tempfile

        mappings = random_flights(n, legs=2, seed=seed)
        with tempfile.TemporaryDirectory() as root:
            self._assert_round_trip(root, mappings)

    def _assert_round_trip(self, root, mappings):
        store = ColumnStore(os.fspath(root))
        for kind in COLUMN_KINDS:
            built = _BUILDERS[kind](mappings_for(kind, mappings))
            store.save(kind, built)
            loaded = store.load(kind)
            for (_name, dtype), b, l in zip(
                _LAYOUT[kind],
                _column_records(kind, built),
                _column_records(kind, loaded),
            ):
                assert (
                    np.ascontiguousarray(b, dtype=dtype).tobytes()
                    == np.ascontiguousarray(l, dtype=dtype).tobytes()
                )

    def test_empty_store_round_trip(self, tmp_path):
        store = save_all(tmp_path, [])
        for kind in COLUMN_KINDS:
            col = store.load(kind)
            assert len(getattr(col, "offsets", [0])) >= 0
        store.verify()


class TestValidation:
    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(CorruptColumnError):
            ColumnStore(os.fspath(tmp_path)).load("upoint")

    def test_unknown_kind_raises(self, tmp_path):
        store = save_all(tmp_path, make_mappings())
        with pytest.raises(CorruptColumnError):
            store.load("nope")

    @pytest.mark.parametrize("kind,name", ALL_FILES)
    def test_payload_bitflip_caught_by_verify(self, tmp_path, kind, name):
        store = save_all(tmp_path, make_mappings())
        flip_byte(store.path(name), HEADER.size + 3)
        with pytest.raises(CorruptColumnError):
            store.verify(kind)

    @pytest.mark.parametrize("kind,name", ALL_FILES)
    def test_header_bitflip_caught_by_cheap_load(self, tmp_path, kind, name):
        store = save_all(tmp_path, make_mappings())
        flip_byte(store.path(name), 0)  # magic byte
        with pytest.raises(CorruptColumnError):
            store.load(kind)

    @pytest.mark.parametrize("kind,name", ALL_FILES)
    def test_truncation_caught_by_cheap_load(self, tmp_path, kind, name):
        store = save_all(tmp_path, make_mappings())
        size = os.path.getsize(store.path(name))
        with open(store.path(name), "r+b") as fh:
            fh.truncate(size - 1)
        with pytest.raises(CorruptColumnError):
            store.load(kind)

    def test_manifest_bitflip_caught(self, tmp_path):
        store = save_all(tmp_path, make_mappings())
        flip_byte(store.path(MANIFEST_NAME), 12)
        with pytest.raises(CorruptColumnError):
            store.manifest()
        with pytest.raises(CorruptColumnError):
            store.load("upoint")
        assert not store.has("upoint")

    def test_dtype_hash_mismatch_rejected(self, tmp_path):
        """A manifest claiming a different record layout must be
        rejected before a memmap view can misread the bytes."""
        import json

        store = save_all(tmp_path, make_mappings())
        payload = store.manifest()
        entry = payload["columns"]["upoint"]["files"]["upoint.bin"]
        entry["dtype_crc32"] = (entry["dtype_crc32"] + 1) & 0xFFFFFFFF
        doc = {
            "crc32": zlib.crc32(
                json.dumps(payload, sort_keys=True).encode("utf-8")
            ),
            "payload": payload,
        }
        with open(store.path(MANIFEST_NAME), "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        with pytest.raises(CorruptColumnError):
            store.load("upoint")


class TestLoadOrRebuild:
    def test_corrupt_store_rebuilt_and_counted(self, tmp_path):
        mappings = make_mappings()
        store = save_all(tmp_path, mappings)
        flip_byte(store.path("upoint.bin"), 0)
        obs.reset()
        col = store.load_or_rebuild("upoint", mappings)
        assert counters()["colstore.rebuilds"] == 1
        assert col.source is not None
        store.verify("upoint")

    def test_object_count_mismatch_is_stale(self, tmp_path):
        """A store directory re-pointed at a different workload must
        rebuild, not serve the other workload's columns."""
        store = save_all(tmp_path, make_mappings(12))
        other = make_mappings(5, seed=99)
        obs.reset()
        col = store.load_or_rebuild("upoint", other)
        assert counters()["colstore.rebuilds"] == 1
        assert len(col.offsets) == len(other) + 1

    def test_fleet_version_mismatch_is_stale(self, tmp_path):
        mappings = make_mappings()
        store = ColumnStore(os.fspath(tmp_path))
        store.save(kind="upoint", column=_BUILDERS["upoint"](mappings),
                   fleet_version=3, n_objects=len(mappings))
        obs.reset()
        store.load_or_rebuild("upoint", mappings, fleet_version=4)
        assert counters()["colstore.rebuilds"] == 1
        assert store.fleet_version("upoint") == 4

    def test_clean_store_served_without_rebuild(self, tmp_path):
        mappings = make_mappings()
        store = save_all(tmp_path, mappings)
        obs.reset()
        store.load_or_rebuild("upoint", mappings)
        c = counters()
        assert c.get("colstore.rebuilds", 0) == 0
        assert c["colstore.hits"] == 1


#: (failpoint, policy) matrix: every registered colstore failpoint, at
#: its first and second firing opportunity.
TORN_CASES = [
    ("colstore.write_crash", "once"),
    ("colstore.write_crash", "after:1"),
    ("colstore.manifest_crash", "once"),
]


class TestTornWrites:
    @pytest.mark.parametrize("failpoint,policy", TORN_CASES)
    def test_crash_mid_save_never_serves_torn_bytes(
        self, tmp_path, failpoint, policy
    ):
        mappings = make_mappings()
        store = save_all(tmp_path, mappings)
        before = store.manifest()
        grown = mappings + make_mappings(3, seed=11)
        faults.arm(failpoint, policy)
        with pytest.raises(SimulatedCrash):
            store.save(
                "upoint", _BUILDERS["upoint"](mappings=grown),
                n_objects=len(grown),
            )
        faults.disarm()
        # The manifest still describes the *old* generation: either it
        # validates in full (column files untouched or torn files not
        # yet renamed in) or validation rejects it — never torn bytes
        # served as good.
        try:
            store.verify()
        except CorruptColumnError:
            pass
        else:
            assert store.manifest() == before
        # And the degrade path repairs whichever shape resulted.
        obs.reset()
        col = store.load_or_rebuild("upoint", grown)
        assert len(col.offsets) == len(grown) + 1
        store.verify("upoint")

    @pytest.mark.parametrize("failpoint,policy", TORN_CASES)
    def test_recovery_rebuilds_after_torn_checkpoint(
        self, tmp_path, failpoint, policy
    ):
        """WAL + colstore: a crash during a re-checkpoint leaves the
        COLSTORE record pointing at a generation that no longer
        verifies; recovery must rebuild it from the recovered rows."""
        wal = Wal()
        db = Database(wal=wal)
        rel = db.create_relation(
            "ships", SCHEMA, materialized=True, inline_threshold=64
        )
        for i, m in enumerate(make_mappings(6)):
            rel.insert([f"s{i}", m])
        root = os.fspath(tmp_path / "cols")
        db.checkpoint_columns(root, "ships", "track")
        # Second checkpoint tears: column files may be half-replaced
        # relative to the manifest the WAL checkpoint record pins.
        faults.arm(failpoint, policy)
        with pytest.raises(SimulatedCrash):
            db.checkpoint_columns(root, "ships", "track")
        faults.disarm()
        wal.crash()
        obs.reset()
        recovered = Database.recover(wal)
        store = ColumnStore(root)
        store.verify()  # whatever recovery left must validate in full
        col = store.load("upoint")
        assert len(col.offsets) == len(recovered.relation("ships")) + 1


class TestRecoveryMatrix:
    def _checkpointed_db(self, tmp_path, n=6):
        wal = Wal()
        db = Database(wal=wal)
        rel = db.create_relation(
            "ships", SCHEMA, materialized=True, inline_threshold=64
        )
        for i, m in enumerate(make_mappings(n)):
            rel.insert([f"s{i}", m])
        root = os.fspath(tmp_path / "cols")
        db.checkpoint_columns(root, "ships", "track")
        return wal, db, ColumnStore(root)

    def test_intact_store_not_rebuilt(self, tmp_path):
        wal, _db, store = self._checkpointed_db(tmp_path)
        wal.crash()
        obs.reset()
        Database.recover(wal)
        assert counters().get("colstore.rebuilds", 0) == 0
        store.verify()

    @pytest.mark.parametrize(
        "name", sorted({n for _k, n in ALL_FILES if n != "ureal.bin"
                        and n != "ureal_offsets.bin"}) + [MANIFEST_NAME]
    )
    def test_bitflipped_file_rebuilt_on_recovery(self, tmp_path, name):
        """Flip one byte in each checkpointed file (and the manifest):
        recovery must detect it and rebuild, counted per kind."""
        wal, _db, store = self._checkpointed_db(tmp_path)
        offset = 4 if name == MANIFEST_NAME else HEADER.size + 1
        flip_byte(store.path(name), offset)
        wal.crash()
        obs.reset()
        recovered = Database.recover(wal)
        assert counters()["colstore.rebuilds"] >= 1
        store.verify()  # rebuilt generation is fully valid again
        col = store.load("upoint")
        assert len(col.offsets) == len(recovered.relation("ships")) + 1

    def test_missing_store_directory_degrades(self, tmp_path):
        import shutil

        wal, _db, store = self._checkpointed_db(tmp_path)
        shutil.rmtree(store.root)
        wal.crash()
        recovered = Database.recover(wal)  # must not raise
        # Rebuild from the recovered relation re-created the directory.
        assert ColumnStore(store.root).exists() or not os.path.exists(
            store.root
        )
        assert len(recovered.relation("ships")) == 6


class TestBackendParity:
    def test_query_results_identical_across_backends(self, tmp_path):
        db = Database()
        rel = db.create_relation("planes", [("id", "string"),
                                            ("flight", "mpoint")])
        rel.insert(["LH1", MovingPoint.from_waypoints(
            [(0, (0, 0)), (100, (6000, 0))])])
        rel.insert(["LH2", MovingPoint.from_waypoints(
            [(0, (0, 10)), (100, (3000, 10))])])
        rel.insert(["AF1", MovingPoint.from_waypoints(
            [(50, (0, 0.2)), (150, (6000, 0.2))])])
        sql = "SELECT id FROM planes WHERE present(flight, 120)"
        set_backend("scalar")
        scalar = sorted(r["id"].value for r in db.query(sql))
        set_store(os.fspath(tmp_path))
        for backend in ("vector", "parallel"):
            set_backend(backend)
            clear_cache()
            cold = sorted(r["id"].value for r in db.query(sql))
            warm = sorted(r["id"].value for r in db.query(sql))
            assert cold == warm == scalar

    def test_explain_shows_mmap_scan_only_with_store(self, tmp_path):
        from repro.db.sql import explain

        db = Database()
        db.create_relation("planes", [("id", "string"),
                                      ("flight", "mpoint")])
        set_backend("vector")
        assert "MmapScan" not in explain(
            db, "SELECT id FROM planes WHERE present(flight, 1)"
        )
        set_store(os.fspath(tmp_path))
        plan = explain(db, "SELECT id FROM planes WHERE present(flight, 1)")
        assert "MmapScan(planes" in plan
        assert "planes.flight" in plan
        set_backend("parallel")
        assert "mode=parallel" in explain(
            db, "SELECT id FROM planes WHERE present(flight, 1)"
        )

    def test_fleet_helpers_serve_bit_identical_from_store(self, tmp_path):
        mappings = make_mappings(10)
        set_backend("scalar")
        scalar = fleet_atinstant(mappings, 1.5)
        set_store(os.fspath(tmp_path))
        fleet = Fleet(mappings)
        set_backend("vector")
        cold = fleet_atinstant(fleet, 1.5)
        assert counters()["colstore.rebuilds"] == 1
        clear_cache()
        obs.reset()
        warm = fleet_atinstant(fleet, 1.5)
        assert counters()["colstore.hits"] >= 1
        for s, c, w in zip(scalar, cold, warm):
            if s is None:
                assert c is None and w is None
            else:
                assert s.x == c.x == w.x and s.y == c.y == w.y
