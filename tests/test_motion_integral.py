"""Tests for motion derivatives (velocity/heading) and moving-real integrals."""

import math

import pytest

from repro.errors import UndefinedValue
from repro.ranges.interval import Interval, closed
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.ureal import UReal
from repro.ops.motion import heading, turning_points, velocity


class TestVelocity:
    def test_piecewise_constant(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0)), (20, (10, 20))])
        vx, vy = velocity(mp)
        assert vx.value_at(5.0).value == pytest.approx(1.0)
        assert vy.value_at(5.0).value == pytest.approx(0.0)
        assert vx.value_at(15.0).value == pytest.approx(0.0)
        assert vy.value_at(15.0).value == pytest.approx(2.0)

    def test_speed_consistency(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (30, 40))])
        vx, vy = velocity(mp)
        sp = mp.speed()
        t = 5.0
        assert sp.value_at(t).value == pytest.approx(
            math.hypot(vx.value_at(t).value, vy.value_at(t).value)
        )


class TestHeading:
    def test_heading_values(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0)), (20, (10, 10))])
        h = heading(mp)
        assert h.value_at(5.0).value == pytest.approx(0.0)
        assert h.value_at(15.0).value == pytest.approx(math.pi / 2)

    def test_stationary_heading_undefined(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (5, 0)), (20, (5, 0))])
        h = heading(mp)
        assert h.value_at(15.0) is None
        assert h.value_at(5.0) is not None

    def test_turning_points(self):
        mp = MovingPoint.from_waypoints(
            [(0, (0, 0)), (10, (10, 0)), (20, (10, 10)), (30, (20, 20))]
        )
        assert turning_points(mp) == [10.0, 20.0]

    def test_no_turning_on_straight_track(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (5, 5)), (20, (10, 10))])
        assert turning_points(mp) == []


class TestIntegral:
    def test_constant(self):
        m = MovingReal([UReal.constant(closed(0.0, 4.0), 2.5)])
        assert m.integral() == pytest.approx(10.0)

    def test_linear(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])  # t
        assert m.integral() == pytest.approx(50.0)

    def test_quadratic(self):
        m = MovingReal([UReal(closed(0.0, 3.0), 1, 0, 0)])  # t²
        assert m.integral() == pytest.approx(9.0)

    def test_sqrt_exact_case(self):
        # sqrt((t)²) = |t| = t on [0, 4]: integral 8.
        m = MovingReal([UReal(closed(0.0, 4.0), 1, 0, 0, r=True)])
        assert m.integral() == pytest.approx(8.0, rel=1e-9)

    def test_sqrt_circle_quarter(self):
        # sqrt(1 - t²) over [0, 1] integrates to pi/4.
        m = MovingReal([UReal(closed(0.0, 1.0), -1, 0, 1, r=True)])
        assert m.integral() == pytest.approx(math.pi / 4, rel=1e-5)

    def test_multi_unit_sum(self):
        m = MovingReal(
            [
                UReal(Interval(0.0, 1.0, True, False), 0, 0, 1.0),
                UReal(closed(1.0, 2.0), 0, 0, 3.0),
            ]
        )
        assert m.integral() == pytest.approx(4.0)

    def test_average(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])
        assert m.time_weighted_average() == pytest.approx(5.0)

    def test_average_zero_duration_raises(self):
        m = MovingReal([UReal(Interval(1.0, 1.0), 0, 0, 5.0)])
        with pytest.raises(UndefinedValue):
            m.time_weighted_average()

    def test_distance_integral_is_path_area(self):
        # Average distance of two points moving apart at speed 1 from 0:
        # d(t) = t, average over [0, 10] = 5.
        from repro.ops.distance import mpoint_distance

        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 10))])
        d = mpoint_distance(a, b)
        assert d.time_weighted_average() == pytest.approx(5.0, rel=1e-6)
