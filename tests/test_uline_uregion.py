"""Tests for uline and uregion (Section 3.2.6, Figures 4–6)."""

import pytest

from repro.errors import InvalidValue
from repro.ranges.interval import Interval, closed, interval_at
from repro.spatial.line import Line
from repro.spatial.region import Region
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.uline import ULine, orientation_quad
from repro.temporal.uregion import MCycle, MFace, URegion, _msegs_cross_inside


def translating_mseg(seg0, offset, t0=0.0, t1=10.0):
    seg1 = (
        (seg0[0][0] + offset[0], seg0[0][1] + offset[1]),
        (seg0[1][0] + offset[0], seg0[1][1] + offset[1]),
    )
    return MSeg.between_segments(t0, seg0, t1, seg1)


class TestOrientationQuad:
    def test_static_collinear(self):
        a = MPoint.stationary((0, 0))
        b = MPoint.stationary((1, 0))
        c = MPoint.stationary((2, 0))
        q = orientation_quad(a, b, c)
        assert q == (0.0, 0.0, 0.0)

    def test_becomes_collinear_at_root(self):
        a = MPoint.stationary((0, 0))
        b = MPoint.stationary((1, 0))
        c = MPoint(2, 0, 5, -1)  # y = 5 - t: collinear at t = 5
        q = orientation_quad(a, b, c)
        from repro.temporal.quadratics import solve_quadratic

        assert solve_quadratic(*q) == [5.0]


class TestULine:
    def test_stationary(self):
        line = Line.polyline([(0, 0), (1, 0), (1, 1)])
        u = ULine.stationary(closed(0.0, 10.0), line)
        assert u.value_at(5.0) == line

    def test_translation(self):
        u = ULine(
            closed(0.0, 10.0),
            [translating_mseg(((0, 0), (1, 0)), (5, 0))],
        )
        assert u.value_at(10.0) == Line([((5, 0), (6, 0))])

    def test_needs_at_least_one(self):
        with pytest.raises(InvalidValue):
            ULine(closed(0.0, 1.0), [])

    def test_degeneracy_inside_open_interval_rejected(self):
        # Collapses to a point at t = 5, inside (0, 10).
        m = MSeg.between_segments(0.0, ((0, 0), (2, 0)), 5.0, ((1, 0), (1, 0)))
        with pytest.raises(InvalidValue):
            ULine(closed(0.0, 10.0), [m])

    def test_degeneracy_at_endpoint_allowed(self):
        m = MSeg.between_segments(0.0, ((0, 0), (2, 0)), 10.0, ((1, 0), (1, 0)))
        u = ULine(closed(0.0, 10.0), [m])
        # ι_e cleanup drops the collapsed segment.
        assert u.value_at(10.0) == Line()
        assert u.value_at(5.0).length() == pytest.approx(1.0)

    def test_overlap_inside_open_interval_rejected(self):
        # Two horizontal segments slide onto the same carrier and overlap
        # at t = 5: one moves up to y=0, starting below.
        a = MSeg.stationary(((0, 0), (2, 0)))
        b = MSeg.between_segments(0.0, ((1, -5), (3, -5)), 5.0, ((1, 0), (3, 0)))
        with pytest.raises(InvalidValue):
            ULine(closed(0.0, 10.0), [a, b])

    def test_touching_at_instant_allowed(self):
        # b crosses a's carrier line but never overlaps it (no collinear
        # overlap, just crossing carriers at distinct x ranges).
        a = MSeg.stationary(((0, 0), (2, 0)))
        b = MSeg.between_segments(0.0, ((5, -5), (7, -5)), 5.0, ((5, 0), (7, 0)))
        u = ULine(closed(0.0, 10.0), [a, b])
        assert len(u) == 2

    def test_endpoint_overlap_merged_by_cleanup(self):
        # At t=10 the two segments become collinear and overlapping;
        # ι_e merges them into one maximal segment.
        a = MSeg.stationary(((0, 0), (2, 0)))
        b = MSeg.between_segments(0.0, ((1, -5), (3, -5)), 10.0, ((1, 0), (3, 0)))
        u = ULine(closed(0.0, 10.0), [a, b])
        end = u.value_at(10.0)
        assert end == Line([((0, 0), (3, 0))])

    def test_between_lines(self):
        l0 = Line([((0, 0), (1, 0))])
        l1 = Line([((4, 4), (5, 4))])
        u = ULine.between_lines(0.0, l0, 10.0, l1)
        assert u.value_at(5.0) == Line([((2, 2), (3, 2))])

    def test_bounding_cube(self):
        u = ULine(closed(0.0, 10.0), [translating_mseg(((0, 0), (1, 0)), (5, 5))])
        c = u.bounding_cube()
        assert (c.xmin, c.ymin, c.xmax, c.ymax) == (0, 0, 6, 5)


def square_uregion(t0=0.0, t1=10.0, offset=(5.0, 0.0), size=2.0):
    r0 = Region.box(0, 0, size, size)
    r1 = Region.box(offset[0], offset[1], offset[0] + size, offset[1] + size)
    return URegion.between_regions(t0, r0, t1, r1)


class TestURegion:
    def test_translation_evaluates(self):
        u = square_uregion()
        r = u.value_at(5.0)
        assert r.area() == pytest.approx(4.0)
        assert r.bbox().xmin == pytest.approx(2.5)

    def test_needs_a_face(self):
        with pytest.raises(InvalidValue):
            URegion(closed(0.0, 1.0), [])

    def test_mcycle_needs_three(self):
        with pytest.raises(InvalidValue):
            MCycle([MSeg.stationary(((0, 0), (1, 0)))])

    def test_structure_preserved(self):
        r0 = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        u = URegion.stationary(closed(0.0, 1.0), r0)
        got = u.value_at(0.5)
        assert len(got.faces[0].holes) == 1
        assert got.area() == pytest.approx(96.0)

    def test_invalid_midway_rejected(self):
        # Two faces translate towards each other and overlap mid-interval.
        r0 = Region([f for f in Region.box(0, 0, 2, 2).faces] +
                    [f for f in Region.box(8, 0, 10, 2).faces])
        r1 = Region([f for f in Region.box(8, 0, 10, 2).faces] +
                    [f for f in Region.box(0, 0, 2, 2).faces])
        # Match faces crosswise so they pass through each other.
        from repro.temporal.uregion import MFace as MF

        f0a, f0b = r0.faces
        mfaces = [
            MF(MCycle.between_cycles(0.0, f0a.outer, 10.0, f0b.outer)),
            MF(MCycle.between_cycles(0.0, f0b.outer, 10.0, f0a.outer)),
        ]
        with pytest.raises(InvalidValue):
            URegion(closed(0.0, 10.0), mfaces, validate="full")

    def test_collapse_to_point_cleanup(self):
        from repro.temporal.interpolate import collapse_to_point

        u = collapse_to_point(0.0, Region.box(0, 0, 4, 4), 10.0, (2.0, 2.0))
        assert u.value_at(10.0) == Region()
        assert u.value_at(9.0).area() > 0

    def test_collapse_to_segment_cleanup(self):
        # Square flattens to a horizontal segment at t=10: the two
        # vertical edges degenerate, the two horizontal edges coincide
        # (even parity) — everything cleans away.
        r0 = Region.box(0, 0, 4, 4)
        r1_segs = [
            MSeg.between_segments(0.0, s, 10.0, ((s[0][0], 0.0), (s[1][0], 0.0)))
            if s[0][0] != s[1][0]
            else MSeg.between_segments(
                0.0, s, 10.0, ((s[0][0], 0.0), (s[0][0], 0.0))
            )
            for s in r0.faces[0].outer.segments
        ]
        u = URegion(closed(0.0, 10.0), [MFace(MCycle(r1_segs), [])])
        assert u.value_at(10.0) == Region()

    def test_msegs_cross_detection(self):
        a = MSeg.stationary(((0, 0), (4, 0)))
        # b sweeps across a's interior between t=0 and t=10.
        b = MSeg.between_segments(0.0, ((2, -2), (2, -1)), 10.0, ((2, 1), (2, 2)))
        assert _msegs_cross_inside(a, b, 0.0, 10.0)

    def test_msegs_no_cross(self):
        a = MSeg.stationary(((0, 0), (4, 0)))
        b = MSeg.stationary(((0, 5), (4, 5)))
        assert not _msegs_cross_inside(a, b, 0.0, 10.0)

    def test_bounding_cube_covers_motion(self):
        u = square_uregion(offset=(5.0, 3.0))
        c = u.bounding_cube()
        assert c.xmax == pytest.approx(7.0)
        assert c.ymax == pytest.approx(5.0)

    def test_scaling_region(self):
        r0 = Region.box(-2, -2, 2, 2)
        r1 = Region.box(-4, -4, 4, 4)
        u = URegion.between_regions(0.0, r0, 10.0, r1)
        assert u.value_at(5.0).area() == pytest.approx(36.0)

    def test_with_interval_restriction(self):
        u = square_uregion()
        r = u.restricted(closed(2.0, 3.0))
        assert r.value_at(2.5).area() == pytest.approx(4.0)
