"""Tests for the storage engine: arrays, pages, buffer pool, FLOBs."""

import pytest

from repro.config import PAGE_SIZE
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.darray import DatabaseArray, SubArray
from repro.storage.flob import FlobRef, FlobStore
from repro.storage.pages import PAGE_HEADER_SIZE, PageFile


class TestDatabaseArray:
    def test_append_get(self):
        arr = DatabaseArray("<dd")
        idx = arr.append(1.0, 2.0)
        assert idx == 0
        assert arr.get(0) == (1.0, 2.0)

    def test_set(self):
        arr = DatabaseArray("<i")
        arr.append(1)
        arr.set(0, 42)
        assert arr.get(0) == (42,)

    def test_out_of_range(self):
        arr = DatabaseArray("<i")
        with pytest.raises(StorageError):
            arr.get(0)
        arr.append(1)
        with pytest.raises(StorageError):
            arr.set(1, 2)

    def test_iteration_order(self):
        arr = DatabaseArray("<i")
        arr.extend([(1,), (2,), (3,)])
        assert list(arr) == [(1,), (2,), (3,)]

    def test_nbytes(self):
        arr = DatabaseArray("<dd")
        arr.append(0.0, 0.0)
        assert arr.nbytes == 16

    def test_serialization_roundtrip(self):
        arr = DatabaseArray("<di")
        arr.extend([(1.5, 2), (3.5, 4)])
        back = DatabaseArray.from_bytes(arr.to_bytes())
        assert back == arr
        assert list(back) == [(1.5, 2), (3.5, 4)]

    def test_truncated_deserialization_rejected(self):
        arr = DatabaseArray("<d")
        arr.append(1.0)
        blob = arr.to_bytes()
        with pytest.raises(StorageError):
            DatabaseArray.from_bytes(blob[:-4])

    def test_subarray_read(self):
        arr = DatabaseArray("<i")
        arr.extend([(10,), (20,), (30,), (40,)])
        sub = SubArray(0, 1, 3)
        assert sub.read([arr]) == [(20,), (30,)]
        assert len(sub) == 2

    def test_subarray_malformed(self):
        with pytest.raises(StorageError):
            SubArray(0, 3, 1)


class TestPageFile:
    def test_allocate_read_write(self):
        pf = PageFile()
        n = pf.allocate()
        pf.write_page(n, b"hello")
        data = pf.read_page(n)
        assert data.startswith(b"hello")
        assert len(data) == pf.payload_size
        assert pf.payload_size == pf.page_size - PAGE_HEADER_SIZE

    def test_out_of_range(self):
        pf = PageFile()
        with pytest.raises(StorageError):
            pf.read_page(0)

    def test_oversized_payload_rejected(self):
        pf = PageFile(page_size=64)
        n = pf.allocate()
        with pytest.raises(StorageError):
            pf.write_page(n, b"x" * 65)

    def test_file_backed(self, tmp_path):
        path = str(tmp_path / "pages.dat")
        pf = PageFile(path)
        n = pf.allocate()
        pf.write_page(n, b"persisted")
        pf.close()
        pf2 = PageFile(path)
        assert pf2.read_page(n).startswith(b"persisted")
        pf2.close()

    def test_io_stats(self):
        pf = PageFile()
        n = pf.allocate()
        pf.write_page(n, b"x")
        pf.read_page(n)
        reads, writes = pf.io_stats
        assert reads == 1 and writes == 2  # allocate + write


class TestBufferPool:
    def test_hit_miss_accounting(self):
        pf = PageFile()
        pool = BufferPool(pf, capacity=2)
        n = pool.new_page()
        pool.pin(n)
        pool.unpin(n)
        pool.pin(n)
        pool.unpin(n)
        assert pool.misses == 1 and pool.hits == 1

    def test_lru_eviction(self):
        pf = PageFile()
        pool = BufferPool(pf, capacity=2)
        pages = [pool.new_page() for _ in range(3)]
        for p in pages:
            pool.pin(p)
            pool.unpin(p)
        assert pool.resident_pages == 2
        # Page 0 was least recently used and must have been evicted.
        pool.pin(pages[0])
        assert pool.misses == 4

    def test_dirty_writeback_on_eviction(self):
        pf = PageFile()
        pool = BufferPool(pf, capacity=1)
        a = pool.new_page()
        frame = pool.pin(a)
        frame[:5] = b"dirty"
        pool.unpin(a, dirty=True)
        b = pool.new_page()
        pool.pin(b)  # evicts a, forcing write-back
        pool.unpin(b)
        assert pf.read_page(a).startswith(b"dirty")

    def test_pinned_pages_not_evicted(self):
        pf = PageFile()
        pool = BufferPool(pf, capacity=1)
        a = pool.new_page()
        pool.pin(a)
        b = pool.new_page()
        with pytest.raises(StorageError):
            pool.pin(b)

    def test_unpin_unpinned_rejected(self):
        pf = PageFile()
        pool = BufferPool(pf, capacity=2)
        n = pool.new_page()
        with pytest.raises(StorageError):
            pool.unpin(n)

    def test_flush(self):
        pf = PageFile()
        pool = BufferPool(pf, capacity=4)
        n = pool.new_page()
        frame = pool.pin(n)
        frame[:4] = b"data"
        pool.unpin(n, dirty=True)
        pool.flush()
        assert pf.read_page(n).startswith(b"data")


class TestFlobStore:
    def make_store(self, threshold=64, page_size=128):
        pf = PageFile(page_size=page_size)
        return FlobStore(BufferPool(pf, capacity=8), inline_threshold=threshold)

    def test_small_goes_inline(self):
        store = self.make_store()
        inline, payload = store.place(b"tiny")
        assert inline and payload == b"tiny"

    def test_large_goes_external(self):
        store = self.make_store()
        data = b"z" * 1000
        inline, ref = store.place(data)
        assert not inline
        assert isinstance(ref, FlobRef)
        assert store.read(ref) == data

    def test_fetch_inverts_place(self):
        store = self.make_store()
        for size in (0, 10, 64, 65, 500, 5000):
            data = bytes(range(256)) * (size // 256 + 1)
            data = data[:size]
            assert store.fetch(store.place(data)) == data

    def test_chain_spans_pages(self):
        store = self.make_store(threshold=8, page_size=64)
        data = b"q" * 300  # needs several 56-byte payload pages
        _inline, ref = store.place(data)
        assert store.read(ref) == data
