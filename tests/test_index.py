"""Tests for the 3-D R-tree and the per-unit moving object index."""

import random

import pytest

from repro.index.rtree import RTree3D
from repro.index.unitindex import MovingObjectIndex
from repro.spatial.bbox import Cube, Rect
from repro.temporal.mapping import MovingPoint
from repro.workloads.trajectories import random_flights


def cube_at(x, y, t, size=1.0):
    return Cube(x, y, t, x + size, y + size, t + size)


class TestRTree:
    def test_insert_and_hit(self):
        tree = RTree3D()
        tree.insert(cube_at(0, 0, 0), "a")
        assert tree.search_list(cube_at(0.5, 0.5, 0.5)) == ["a"]

    def test_miss(self):
        tree = RTree3D()
        tree.insert(cube_at(0, 0, 0), "a")
        assert tree.search_list(cube_at(10, 10, 10)) == []

    def test_len(self):
        tree = RTree3D()
        for i in range(20):
            tree.insert(cube_at(i, 0, 0), i)
        assert len(tree) == 20

    def test_splits_grow_height(self):
        tree = RTree3D(max_entries=4)
        for i in range(50):
            tree.insert(cube_at(float(i), 0, 0), i)
        assert tree.height() >= 2
        assert tree.node_count() > 1

    def test_results_match_linear_scan(self):
        rng = random.Random(7)
        tree = RTree3D(max_entries=6)
        entries = []
        for i in range(300):
            c = cube_at(
                rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100),
                size=rng.uniform(0.5, 5.0),
            )
            entries.append((c, i))
            tree.insert(c, i)
        for _ in range(20):
            q = cube_at(
                rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100),
                size=10.0,
            )
            expected = sorted(i for c, i in entries if c.intersects(q))
            assert sorted(tree.search(q)) == expected

    def test_duplicate_cubes_allowed(self):
        tree = RTree3D()
        c = cube_at(0, 0, 0)
        tree.insert(c, "a")
        tree.insert(c, "b")
        assert sorted(tree.search(c)) == ["a", "b"]

    def test_min_fanout_enforced(self):
        import pytest as _pytest

        with _pytest.raises(Exception):
            RTree3D(max_entries=2)


class TestMovingObjectIndex:
    def test_unit_granularity(self):
        idx = MovingObjectIndex()
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0)), (20, (10, 10))])
        idx.add("obj", mp)
        assert len(idx) == 1
        assert idx.unit_entries == 2

    def test_time_slice_query(self):
        idx = MovingObjectIndex()
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(50, (0, 0)), (60, (10, 0))])
        idx.add("early", a)
        idx.add("late", b)
        got = idx.candidates_at(Rect(0, -1, 10, 1), 5.0)
        assert got == {"early"}

    def test_window_query(self):
        idx = MovingObjectIndex()
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        idx.add("a", a)
        assert idx.candidates_window(Rect(100, 100, 110, 110), 0.0, 10.0) == set()
        assert idx.candidates_window(Rect(0, 0, 5, 5), 0.0, 10.0) == {"a"}

    def test_candidates_superset_of_truth(self):
        # The index is a filter: every truly matching flight must appear.
        flights = random_flights(30, legs=6, seed=11)
        idx = MovingObjectIndex()
        for i, f in enumerate(flights):
            idx.add(i, f)
        window = Rect(2000, 2000, 5000, 5000)
        t0, t1 = 0.0, 500.0
        candidates = idx.candidates_window(window, t0, t1)
        for i, f in enumerate(flights):
            truly = any(
                window.contains_point(u.vec_at(tc))
                for u in f.units
                for tc in (
                    max(u.interval.s, t0),
                    min(u.interval.e, t1),
                )
                if u.interval.s <= t1 and u.interval.e >= t0
                and u.interval.contains(tc)
            )
            if truly:
                assert i in candidates

    def test_candidates_near(self):
        idx = MovingObjectIndex()
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(0, (0, 2)), (10, (10, 2))])
        far = MovingPoint.from_waypoints([(0, (0, 500)), (10, (10, 500))])
        idx.add("b", b)
        idx.add("far", far)
        assert idx.candidates_near(a, slack=5.0) == {"b"}
