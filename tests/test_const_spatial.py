"""const(α) applied to spatial types: discretely changing spatial values.

The paper introduces ``const`` for int/string/bool but notes it "can
nevertheless be applied also to other types ... for applications where
values of such types change only in discrete steps" (Section 3.2.5).
This is exactly the older Worboys-style stepwise model embedded in the
sliced representation: ``mapping(const(region))``.
"""

import pytest

from repro.errors import InvalidValue
from repro.ranges.interval import Interval, closed
from repro.spatial.line import Line
from repro.spatial.points import Points
from repro.spatial.region import Region
from repro.temporal.mapping import Mapping
from repro.temporal.uconst import ConstUnit


def land_parcel_history():
    """A cadastral parcel changing shape at discrete transaction dates."""
    shapes = [
        Region.box(0, 0, 10, 10),
        Region.box(0, 0, 10, 14),  # extension bought in year 3
        Region.polygon([(0, 0), (10, 0), (10, 14), (4, 14), (0, 8)]),  # partial sale
    ]
    units = [
        ConstUnit(Interval(0.0, 3.0, True, False), shapes[0]),
        ConstUnit(Interval(3.0, 7.0, True, False), shapes[1]),
        ConstUnit(Interval(7.0, 20.0, True, True), shapes[2]),
    ]
    return Mapping(units), shapes


class TestStepwiseRegion:
    def test_value_at_steps(self):
        parcel, shapes = land_parcel_history()
        assert parcel.value_at(1.0) == shapes[0]
        assert parcel.value_at(3.0) == shapes[1]
        assert parcel.value_at(10.0) == shapes[2]
        assert parcel.value_at(25.0) is None

    def test_area_changes_discretely(self):
        parcel, _shapes = land_parcel_history()
        assert parcel.value_at(2.9).area() == pytest.approx(100.0)
        assert parcel.value_at(3.1).area() == pytest.approx(140.0)

    def test_adjacent_equal_regions_rejected(self):
        r = Region.box(0, 0, 5, 5)
        with pytest.raises(InvalidValue):
            Mapping(
                [
                    ConstUnit(Interval(0.0, 1.0, True, False), r),
                    ConstUnit(closed(1.0, 2.0), r),
                ]
            )

    def test_adjacent_distinct_same_repr_accepted(self):
        # Two different unit squares share their repr ("1 faces, 4
        # segments"); value-based function comparison must see them as
        # distinct.
        a = Region.box(0, 0, 5, 5)
        b = Region.box(1, 1, 6, 6)
        assert repr(a) == repr(b)
        m = Mapping(
            [
                ConstUnit(Interval(0.0, 1.0, True, False), a),
                ConstUnit(closed(1.0, 2.0), b),
            ]
        )
        assert len(m) == 2

    def test_normalized_merges_equal_adjacent(self):
        r = Region.box(0, 0, 5, 5)
        m = Mapping.normalized(
            [
                ConstUnit(Interval(0.0, 1.0, True, False), r),
                ConstUnit(closed(1.0, 2.0), r),
            ]
        )
        assert len(m) == 1
        assert m.units[0].interval == closed(0.0, 2.0)

    def test_deftime_and_restriction(self):
        parcel, _shapes = land_parcel_history()
        clipped = parcel.restricted_to(closed(2.0, 5.0))
        assert clipped.deftime().total_length() == pytest.approx(3.0)
        assert clipped.value_at(2.5).area() == pytest.approx(100.0)


class TestStepwiseOtherSpatial:
    def test_const_line(self):
        routes = Mapping(
            [
                ConstUnit(
                    Interval(0.0, 5.0, True, False),
                    Line.polyline([(0, 0), (5, 5)]),
                ),
                ConstUnit(closed(5.0, 9.0), Line.polyline([(0, 0), (5, 0), (5, 5)])),
            ]
        )
        assert routes.value_at(2.0).length() == pytest.approx(50**0.5)
        assert routes.value_at(6.0).length() == pytest.approx(10.0)

    def test_const_points(self):
        stations = Mapping(
            [
                ConstUnit(Interval(0.0, 1.0, True, False), Points([(0, 0)])),
                ConstUnit(closed(1.0, 2.0), Points([(0, 0), (5, 5)])),
            ]
        )
        assert len(stations.value_at(0.5)) == 1
        assert len(stations.value_at(1.5)) == 2

    def test_initial_final(self):
        parcel, shapes = land_parcel_history()
        assert parcel.initial().val == shapes[0]
        assert parcel.final().val == shapes[2]
