"""Unit tests for the columnar vector backend (repro.vector)."""

import numpy as np
import pytest

from repro import obs
from repro.db.catalog import Database
from repro.errors import InvalidValue
from repro.geometry.plumbline import crossings_above, point_in_segset
from repro.ops.window import WindowQueryEngine
from repro.ranges.interval import Interval
from repro.spatial.bbox import Cube, Rect
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.upoint import UPoint
from repro.temporal.ureal import UReal
from repro.vector.columns import BBoxColumn, UPointColumn, URealColumn
from repro.vector.fleet import (
    fleet_atinstant,
    fleet_atinstant_real,
    fleet_bbox_filter,
    fleet_count_inside,
    get_backend,
    set_backend,
)
from repro.vector.kernels import (
    atinstant_batch,
    bbox_filter_batch,
    crossings_above_batch,
    inside_prefilter,
    locate_units,
    ureal_atinstant_batch,
)
from repro.workloads.regions import regular_polygon


@pytest.fixture(autouse=True)
def _scalar_default():
    """Every test starts and ends on the scalar default backend."""
    set_backend("scalar")
    yield
    set_backend("scalar")


def make_fleet():
    """A small fleet exercising gaps, ⊥ instants, and open boundaries."""
    a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0)), (20, (10, 10))])
    # b has a gap (5, 7) and a right-open unit.
    b = MovingPoint(
        [
            UPoint.between(0, (1, 1), 5, (6, 1), rc=False),
            UPoint.between(7, (6, 1), 12, (6, 6), lc=True),
        ]
    )
    c = MovingPoint([])  # empty: ⊥ everywhere
    d = MovingPoint([UPoint.between(3, (2, 2), 4, (3, 3), lc=False, rc=False)])
    return [a, b, c, d]


class TestColumns:
    def test_round_trip(self):
        fleet = make_fleet()
        col = UPointColumn.from_mappings(fleet)
        assert col.n_objects == 4
        assert col.n_units == sum(len(m.units) for m in fleet)
        back = col.to_mappings()
        assert back == fleet

    def test_rejects_non_mpoint(self):
        with pytest.raises(InvalidValue):
            UPointColumn.from_mappings([MovingReal([UReal(Interval(0, 1), 0, 1, 0)])])

    def test_darray_round_trip(self):
        fleet = make_fleet()
        col = UPointColumn.from_mappings(fleet)
        root, units = col.to_darrays()
        assert len(root) == col.n_objects + 1
        assert len(units) == col.n_units
        again = UPointColumn.from_darrays(root, units)
        assert again.to_mappings() == fleet

    def test_ureal_darray_round_trip(self):
        fleet = [
            MovingReal([UReal(Interval(0, 5), 0.0, 1.0, 2.0)]),
            MovingReal(
                [
                    UReal(Interval(0, 2, True, False), 1.0, 0.0, 0.0),
                    UReal(Interval(3, 4), 0.0, 0.0, 9.0, r=True),
                ]
            ),
        ]
        col = URealColumn.from_mappings(fleet)
        root, units = col.to_darrays()
        assert URealColumn.from_darrays(root, units).to_mappings() == fleet

    def test_bbox_column_skips_empty(self):
        fleet = make_fleet()
        col = BBoxColumn.from_mappings(fleet)
        assert len(col) == 3  # the empty mapping contributes no box
        assert 2 not in col.keys

    def test_bbox_per_unit(self):
        fleet = make_fleet()
        col = BBoxColumn.from_mappings(fleet, per_unit=True)
        assert len(col) == sum(len(m.units) for m in fleet)


class TestKernels:
    @pytest.mark.parametrize(
        "t", [0.0, 2.5, 5.0, 6.0, 7.0, 10.0, 12.0, 20.0, 3.0, 3.5, 4.0, -1.0, 99.0]
    )
    def test_atinstant_matches_scalar(self, t):
        fleet = make_fleet()
        col = UPointColumn.from_mappings(fleet)
        xs, ys, defined = atinstant_batch(col, t)
        for i, m in enumerate(fleet):
            p = m.value_at(t)
            if p is None:
                assert not defined[i]
                assert np.isnan(xs[i]) and np.isnan(ys[i])
            else:
                assert defined[i]
                assert xs[i] == p.x and ys[i] == p.y

    def test_locate_units_empty_column(self):
        col = UPointColumn.from_mappings([MovingPoint([]), MovingPoint([])])
        unit, defined = locate_units(col, 1.0)
        assert not defined.any()
        assert len(unit) == 2

    def test_ureal_matches_scalar(self):
        fleet = [
            MovingReal([UReal(Interval(0, 5), 0.5, -1.0, 2.0)]),
            MovingReal(
                [
                    UReal(Interval(0, 2, True, False), 0.0, 1.0, 0.0),
                    UReal(Interval(3, 4), 0.0, 0.0, 9.0, r=True),
                ]
            ),
            MovingReal([]),
        ]
        col = URealColumn.from_mappings(fleet)
        for t in [0.0, 1.0, 2.0, 2.5, 3.0, 3.7, 4.0, 5.0, -2.0]:
            vs, defined = ureal_atinstant_batch(col, t)
            for i, m in enumerate(fleet):
                v = m.value_at(t)
                if v is None:
                    assert not defined[i]
                else:
                    assert defined[i]
                    assert vs[i] == v.value

    def test_ureal_negative_radicand_raises(self):
        # UReal itself refuses such a unit, so build the column directly:
        # the kernel must still guard against corrupt columnar data.
        col = URealColumn(
            [0, 1], [0.0], [1.0], [True], [True], [0.0], [0.0], [-5.0], [True]
        )
        with pytest.raises(InvalidValue):
            ureal_atinstant_batch(col, 0.5)

    def test_bbox_filter_matches_intersects(self):
        fleet = make_fleet()
        col = BBoxColumn.from_mappings(fleet)
        cube = Cube(0, 0, 0, 6, 6, 6)
        mask = bbox_filter_batch(col, cube)
        for key, hit in zip(col.keys, mask):
            assert hit == fleet[key].bounding_cube().intersects(cube)

    def test_crossings_match_scalar(self):
        region = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)], holes=[[(4, 4), (6, 4), (5, 6)]]
        )
        segs = list(region.segments())
        pts = [(5.0, 5.0), (1.0, 1.0), (11.0, 5.0), (5.0, 4.5), (0.0, 0.0), (10.0, 5.0)]
        counts = crossings_above_batch(pts, segs)
        for p, n in zip(pts, counts):
            assert n == crossings_above(p, segs)

    def test_inside_prefilter_matches_point_in_segset(self):
        region = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)], holes=[[(4, 4), (6, 4), (5, 6)]]
        )
        segs = list(region.segments())
        pts = [(5.0, 5.0), (1.0, 1.0), (11.0, 5.0), (5.0, 4.5), (0.0, 5.0), (10.0, 10.0)]
        inside = inside_prefilter(pts, region)
        for p, got in zip(pts, inside):
            assert bool(got) == point_in_segset(p, segs)


class TestFleet:
    def test_backend_switch(self):
        assert get_backend() == "scalar"
        set_backend("vector")
        assert get_backend() == "vector"
        with pytest.raises(InvalidValue):
            set_backend("simd")

    def test_fleet_atinstant_parity(self):
        fleet = make_fleet()
        for t in [0.0, 3.5, 6.0, 7.0, 12.0, 50.0]:
            assert fleet_atinstant(fleet, t, backend="vector") == fleet_atinstant(
                fleet, t, backend="scalar"
            )

    def test_fleet_atinstant_real_parity(self):
        fleet = [
            MovingReal([UReal(Interval(0, 5), 0.5, -1.0, 2.0)]),
            MovingReal([]),
        ]
        for t in [0.0, 2.0, 5.0, 9.0]:
            assert fleet_atinstant_real(
                fleet, t, backend="vector"
            ) == fleet_atinstant_real(fleet, t, backend="scalar")

    def test_fleet_bbox_filter_parity(self):
        fleet = make_fleet()
        cube = Cube(0, 0, 0, 6, 6, 6)
        assert fleet_bbox_filter(fleet, cube, backend="vector") == fleet_bbox_filter(
            fleet, cube, backend="scalar"
        )

    def test_fleet_count_inside_parity(self):
        fleet = make_fleet()
        region = regular_polygon((5, 2), 6.0, sides=8)
        for t in [0.0, 3.5, 8.0]:
            assert fleet_count_inside(
                fleet, t, region, backend="vector"
            ) == fleet_count_inside(fleet, t, region, backend="scalar")

    def test_mixed_fleet_falls_back_and_counts(self):
        mixed = [
            MovingPoint.from_waypoints([(0, (0, 0)), (1, (1, 1))]),
            MovingReal([UReal(Interval(0, 1), 0, 0, 1)]),  # wrong unit type
        ]
        obs.reset()
        obs.enable()
        try:
            out = fleet_atinstant(mixed, 0.5, backend="vector")
        finally:
            obs.disable()
        assert out[0] is not None
        assert obs.get("vector.fallback_to_scalar") == 1
        assert obs.get("vector.fallback_to_scalar.upoint_column") == 1

    def test_bbox_filter_mixed_fleet_falls_back_and_counts(self):
        # A duck-typed member the column builder rejects but the scalar
        # loop handles (it only needs .units and .bounding_cube()): the
        # vector arm must route through the counted fallback instead of
        # crashing — and both arms must agree.
        class TrajectoryLike:
            def __init__(self, mp):
                self.units = mp.units
                self._mp = mp

            def bounding_cube(self):
                return self._mp.bounding_cube()

        real = MovingPoint.from_waypoints([(0, (0, 0)), (1, (1, 1))])
        duck = TrajectoryLike(
            MovingPoint.from_waypoints([(0, (100, 100)), (1, (101, 101))])
        )
        fleet = [real, duck]
        cube = Cube(0, 0, 0, 2, 2, 2)
        obs.reset()
        obs.enable()
        try:
            out = fleet_bbox_filter(fleet, cube, backend="vector")
        finally:
            obs.disable()
        assert out == fleet_bbox_filter(fleet, cube, backend="scalar") == [0]
        assert obs.get("vector.fallback_to_scalar") == 1
        assert obs.get("vector.fallback_to_scalar.bbox_column") == 1


@pytest.fixture
def planes_db():
    db = Database()
    planes = db.create_relation(
        "planes", [("airline", "string"), ("id", "string"), ("flight", "mpoint")]
    )
    planes.insert(
        ["L", "LH1", MovingPoint.from_waypoints([(0, (0, 0)), (100, (6000, 0))])]
    )
    planes.insert(
        ["L", "LH2", MovingPoint.from_waypoints([(0, (0, 10)), (100, (3000, 10))])]
    )
    planes.insert(
        ["A", "AF1", MovingPoint.from_waypoints([(50, (0, 0.2)), (150, (6000, 0.2))])]
    )
    return db


QUERIES = [
    "SELECT id FROM planes WHERE present(flight, 120)",
    "SELECT id FROM planes WHERE passes_window(flight, 0, 0, 100, 100, 0, 10)",
    "SELECT id FROM planes WHERE passes_window(flight, 0, 0, 100, 100, 0, 10) "
    "AND present(flight, 5)",
    "SELECT id FROM planes WHERE airline = 'L' AND present(flight, 120)",
    "SELECT airline, id FROM planes WHERE length(trajectory(flight)) > 5000",
]


class TestDbWiring:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_backend_parity(self, planes_db, sql):
        set_backend("scalar")
        scalar = sorted(r["id"].value for r in planes_db.query(sql))
        set_backend("vector")
        vector = sorted(r["id"].value for r in planes_db.query(sql))
        assert scalar == vector

    def test_batch_select_counts(self, planes_db):
        set_backend("vector")
        obs.reset()
        obs.enable()
        try:
            planes_db.query(QUERIES[0])
        finally:
            obs.disable()
        assert obs.get("vector.batch_select.calls") == 1
        assert obs.get("vector.batch_select.rows") == 3

    def test_non_compilable_predicate_falls_back(self, planes_db):
        set_backend("vector")
        obs.reset()
        obs.enable()
        try:
            planes_db.query(QUERIES[3])
        finally:
            obs.disable()
        assert obs.get("vector.fallback_to_scalar.predicate") == 1

    def test_explain_shows_vector_scan(self, planes_db):
        from repro.db.sql import explain

        set_backend("vector")
        assert "VectorScan(planes" in explain(planes_db, QUERIES[0])
        set_backend("scalar")
        assert "SeqScan(planes" in explain(planes_db, QUERIES[0])


class TestWindowEngine:
    def test_backend_parity(self):
        import random

        rng = random.Random(11)
        eng = WindowQueryEngine()
        for i in range(60):
            t, wps = 0.0, []
            for _ in range(4):
                wps.append((t, (rng.uniform(0, 100), rng.uniform(0, 100))))
                t += rng.uniform(1, 10)
            eng.add(f"o{i}", MovingPoint.from_waypoints(wps))
        for _ in range(10):
            x0, y0 = rng.uniform(0, 80), rng.uniform(0, 80)
            rect = Rect(x0, y0, x0 + rng.uniform(1, 40), y0 + rng.uniform(1, 40))
            t0 = rng.uniform(0, 20)
            t1 = t0 + rng.uniform(0, 15)
            scalar = eng.query(rect, t0, t1, backend="scalar")
            vector = eng.query(rect, t0, t1, backend="vector")
            naive = eng.query_naive(rect, t0, t1)
            assert scalar == vector == naive


class TestCli:
    def test_snapshot_backend_parity(self, capsys):
        from repro.cli import main

        assert main(["snapshot", "--objects", "50"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["--backend", "vector", "snapshot", "--objects", "50"]) == 0
        vector_out = capsys.readouterr().out
        # Identical except for the backend banner line.
        assert scalar_out.splitlines()[1:] == vector_out.splitlines()[1:]
        assert "backend: vector" in vector_out

    def test_profile_report_survives_failure(self, capsys):
        from repro.cli import main

        with pytest.raises(FileNotFoundError):
            main(["--profile", "run", "/nonexistent/file.sql"])
        out = capsys.readouterr().out
        assert "operation counters (--profile)" in out


class TestBufferObs:
    def test_hits_and_misses_mirrored(self, tmp_path):
        from repro.storage.buffer import BufferPool
        from repro.storage.pages import PageFile

        pf = PageFile(str(tmp_path / "f.pg"), page_size=256)
        pool = BufferPool(pf, capacity=4)
        n = pool.new_page()
        obs.reset()
        obs.enable()
        try:
            pool.pin(n)
            pool.unpin(n)
            pool.pin(n)
            pool.unpin(n)
        finally:
            obs.disable()
        assert pool.stats()["hits"] == 1 and pool.stats()["misses"] == 1
        assert obs.get("buffer.hits") == 1
        assert obs.get("buffer.misses") == 1
