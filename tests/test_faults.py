"""Tests for the deterministic failpoint machinery (:mod:`repro.faults`)."""

import subprocess
import sys

import pytest

from repro import faults
from repro.errors import InvalidValue, SimulatedCrash, StorageError, TransientIOError


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    faults.reset_fired()
    yield
    faults.disarm()
    faults.reset_fired()


class TestPolicies:
    def test_once_fires_then_disarms(self):
        faults.arm("wal.sync_crash", "once")
        assert faults.should_fire("wal.sync_crash")
        assert not faults.should_fire("wal.sync_crash")
        assert not faults.active
        assert faults.fired("wal.sync_crash") == 1

    def test_every_n(self):
        faults.arm("wal.sync_crash", "every:3")
        hits = [faults.should_fire("wal.sync_crash") for _ in range(9)]
        assert hits == [False, False, True] * 3
        assert faults.active  # every:N stays armed
        assert faults.fired("wal.sync_crash") == 3

    def test_after_k(self):
        faults.arm("wal.sync_crash", "after:2")
        hits = [faults.should_fire("wal.sync_crash") for _ in range(5)]
        assert hits == [False, False, True, False, False]
        assert faults.fired("wal.sync_crash") == 1

    def test_prob_deterministic_for_seed(self):
        def run():
            faults.arm("wal.sync_crash", "prob:0.5:7")
            return [faults.should_fire("wal.sync_crash") for _ in range(40)]

        first, second = run(), run()
        assert first == second
        assert any(first) and not all(first)

    def test_prob_extremes(self):
        faults.arm("wal.sync_crash", "prob:0")
        assert not any(faults.should_fire("wal.sync_crash") for _ in range(10))
        faults.arm("wal.sync_crash", "prob:1")
        assert all(faults.should_fire("wal.sync_crash") for _ in range(10))

    @pytest.mark.parametrize(
        "spec",
        ["", "sometimes", "every", "every:0", "every:x", "after",
         "prob", "prob:2", "prob:-0.1", "once:1"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(InvalidValue):
            faults.parse_policy(spec)


class TestArming:
    def test_unregistered_name_rejected(self):
        with pytest.raises(InvalidValue, match="unknown failpoint"):
            faults.arm("nonsense.site")

    def test_fail_raises_simulated_crash(self):
        faults.arm("wal.append_crash")
        with pytest.raises(SimulatedCrash):
            faults.fail("wal.append_crash")

    def test_fail_custom_exception(self):
        faults.arm("pagefile.read_transient")
        with pytest.raises(TransientIOError):
            faults.fail("pagefile.read_transient", TransientIOError)

    def test_simulated_crash_is_not_a_storage_error(self):
        # Quarantine/retry paths catch StorageError; a simulated crash
        # must never be swallowed by them.
        assert not issubclass(SimulatedCrash, StorageError)

    def test_disarm_one_of_many(self):
        faults.arm("wal.sync_crash")
        faults.arm("wal.append_crash")
        faults.disarm("wal.sync_crash")
        assert faults.armed() == {"wal.append_crash": "once"}
        assert faults.active

    def test_arm_spec_multiple_with_defaults(self):
        faults.arm_spec("wal.sync_crash=every:3, flob.write_crash")
        assert faults.armed() == {
            "wal.sync_crash": "every:3",
            "flob.write_crash": "once",
        }

    def test_injected_context_manager(self):
        with faults.injected("wal.sync_crash"):
            assert faults.should_fire("wal.sync_crash")
        assert not faults.active
        assert faults.fired("wal.sync_crash") == 1

    def test_injected_disarms_on_exception(self):
        with pytest.raises(RuntimeError):
            with faults.injected("wal.sync_crash", "every:100"):
                raise RuntimeError("boom")
        assert not faults.active

    def test_fired_counts_survive_disarm_until_reset(self):
        with faults.injected("flob.write_crash"):
            faults.should_fire("flob.write_crash")
        assert faults.fired("flob.write_crash") == 1
        faults.reset_fired()
        assert faults.fired("flob.write_crash") == 0


class TestEnvironmentArming:
    def test_repro_faults_env_arms_at_import(self):
        code = (
            "from repro import faults; "
            "print(sorted(faults.armed().items()))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_FAULTS": "wal.torn_tail=after:1"},
            check=True,
        )
        assert "('wal.torn_tail', 'after:1')" in out.stdout
