"""Tests for the refinement partition (Section 5.2, Figure 8)."""

import pytest

from repro.base.values import IntVal
from repro.ranges.interval import Interval, closed, interval_at
from repro.temporal.refinement import refinement_partition
from repro.temporal.uconst import ConstUnit


def cu(s, e, v=0, lc=True, rc=True):
    return ConstUnit(Interval(s, e, lc, rc), IntVal(v))


def parts(a, b):
    return [
        (iv.s, iv.e, ua is not None, ub is not None)
        for iv, ua, ub in refinement_partition(a, b)
    ]


class TestRefinement:
    def test_identical_intervals(self):
        got = parts([cu(0.0, 10.0)], [cu(0.0, 10.0)])
        assert got == [(0.0, 10.0, True, True)]

    def test_partial_overlap(self):
        got = parts([cu(0.0, 6.0)], [cu(4.0, 10.0)])
        assert got == [
            (0.0, 4.0, True, False),
            (4.0, 6.0, True, True),
            (6.0, 10.0, False, True),
        ]

    def test_disjoint(self):
        got = parts([cu(0.0, 1.0)], [cu(5.0, 6.0)])
        assert got == [(0.0, 1.0, True, False), (5.0, 6.0, False, True)]

    def test_nested(self):
        got = parts([cu(0.0, 10.0)], [cu(3.0, 4.0)])
        assert got == [
            (0.0, 3.0, True, False),
            (3.0, 4.0, True, True),
            (4.0, 10.0, True, False),
        ]

    def test_multi_unit_scan(self):
        a = [cu(0.0, 2.0, 1), cu(2.0, 4.0, 2, lc=False)]
        b = [cu(1.0, 3.0)]
        got = parts(a, b)
        assert got == [
            (0.0, 1.0, True, False),
            (1.0, 2.0, True, True),
            (2.0, 3.0, True, True),
            (3.0, 4.0, True, False),
        ]

    def test_empty_side(self):
        got = parts([cu(0.0, 1.0)], [])
        assert got == [(0.0, 1.0, True, False)]

    def test_both_empty(self):
        assert parts([], []) == []

    def test_open_closure_respected(self):
        # a is right-open at 5: the instant 5 belongs only to b.
        a = [cu(0.0, 5.0, rc=False)]
        b = [cu(5.0, 6.0)]
        got = list(refinement_partition(a, b))
        pieces = [(iv.pretty(), ua is not None, ub is not None) for iv, ua, ub in got]
        assert pieces == [("[0, 5)", True, False), ("[5, 6]", False, True)]

    def test_units_passed_through(self):
        ua_in = cu(0.0, 2.0, 42)
        got = list(refinement_partition([ua_in], []))
        assert got[0][1] is ua_in

    def test_degenerate_meeting_point(self):
        # Both defined exactly at the shared closed instant 5.
        a = [cu(0.0, 5.0)]
        b = [cu(5.0, 9.0)]
        got = parts(a, b)
        assert (5.0, 5.0, True, True) in got

    def test_paper_figure8_shape(self):
        # Two interval lists; their refinement has cuts at every boundary.
        a = [cu(0.0, 3.0), cu(4.0, 8.0)]
        b = [cu(2.0, 5.0), cu(7.0, 9.0)]
        got = parts(a, b)
        cut_points = sorted({p for piece in got for p in (piece[0], piece[1])})
        assert cut_points == [0.0, 2.0, 3.0, 4.0, 5.0, 7.0, 8.0, 9.0]
