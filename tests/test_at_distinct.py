"""Tests for the extra `at` restrictions and SQL DISTINCT."""

import pytest

from repro.db import Database
from repro.ranges.interval import Interval, closed
from repro.ranges.rangeset import RangeSet
from repro.spatial.point import Point
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.ureal import UReal
from repro.ops.interaction import mpoint_at_point, mreal_at_range


class TestMRealAtRange:
    def test_linear_through_bands(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])  # t
        got = mreal_at_range(m, RangeSet([closed(2.0, 4.0), closed(7.0, 8.0)]))
        assert got.deftime() == RangeSet([closed(2.0, 4.0), closed(7.0, 8.0)])
        assert got.value_at(3.0).value == pytest.approx(3.0)
        assert got.value_at(5.0) is None

    def test_parabola_band(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 1, -10, 25)])  # (t-5)²
        got = mreal_at_range(m, RangeSet([closed(0.0, 4.0)]))
        assert got.deftime() == RangeSet([closed(3.0, 7.0)])

    def test_single_interval_argument(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])
        got = mreal_at_range(m, closed(1.0, 2.0))
        assert got.deftime() == RangeSet([closed(1.0, 2.0)])

    def test_open_band_end(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])
        got = mreal_at_range(m, RangeSet([Interval(2.0, 4.0, True, False)]))
        assert not got.deftime().contains(4.0)
        assert got.deftime().contains(2.0)

    def test_never_in_range(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 0, 100.0)])
        assert not mreal_at_range(m, RangeSet([closed(0.0, 1.0)]))

    def test_whole_unit_in_range(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 0, 0.5)])
        got = mreal_at_range(m, RangeSet([closed(0.0, 1.0)]))
        assert got.deftime() == RangeSet([closed(0.0, 10.0)])

    def test_sqrt_form(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0, r=True)])  # sqrt(t)
        got = mreal_at_range(m, RangeSet([closed(2.0, 3.0)]))
        assert got.deftime() == RangeSet([closed(4.0, 9.0)])


class TestMPointAtPoint:
    def test_pass_through_twice(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0)), (20, (0, 0))])
        got = mpoint_at_point(mp, Point(5, 0))
        assert got.deftime() == RangeSet(
            [Interval(5.0, 5.0), Interval(15.0, 15.0)]
        )

    def test_parked_unit_kept_whole(self):
        mp = MovingPoint.from_waypoints(
            [(0, (0, 0)), (10, (5, 5)), (20, (5, 5)), (30, (9, 9))]
        )
        got = mpoint_at_point(mp, (5.0, 5.0))
        assert got.deftime().total_length() == pytest.approx(10.0)

    def test_never_there(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        assert not mpoint_at_point(mp, (5.0, 1.0))

    def test_tuple_target(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 10))])
        got = mpoint_at_point(mp, (5.0, 5.0))
        assert got.value_at(5.0) == Point(5, 5)


class TestDistinct:
    @pytest.fixture
    def db(self):
        db = Database()
        t = db.create_relation("t", [("a", "string"), ("b", "int")])
        for row in [["x", 1], ["x", 1], ["y", 2], ["x", 3], ["y", 2]]:
            t.insert(row)
        return db

    def test_distinct_single_column(self, db):
        rows = db.query("SELECT DISTINCT a FROM t ORDER BY a")
        assert [r["a"].value for r in rows] == ["x", "y"]

    def test_distinct_multi_column(self, db):
        rows = db.query("SELECT DISTINCT a, b FROM t")
        assert len(rows) == 3

    def test_distinct_with_limit(self, db):
        rows = db.query("SELECT DISTINCT a FROM t ORDER BY a LIMIT 1")
        assert len(rows) == 1

    def test_without_distinct_keeps_duplicates(self, db):
        rows = db.query("SELECT a FROM t")
        assert len(rows) == 5
