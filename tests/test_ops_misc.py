"""Tests for atinstant, aggregates, numeric lifts, and projections."""

import math

import pytest

from repro.base.values import RealVal
from repro.errors import UndefinedValue
from repro.ranges.interval import Interval, closed
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.region import Region
from repro.temporal.mapping import (
    MovingLine,
    MovingPoint,
    MovingReal,
    MovingRegion,
)
from repro.temporal.uline import ULine
from repro.temporal.ureal import UReal
from repro.temporal.uregion import URegion
from repro.ops.aggregates import final, initial, inst, mreal_atmax, mreal_atmin, val
from repro.ops.interaction import mpoint_at_region, mregion_atinstant, passes
from repro.ops.numeric import mline_length, mregion_area, mregion_perimeter
from repro.ops.projection import traversed


def translating_region(t0=0.0, t1=10.0):
    return MovingRegion(
        [URegion.between_regions(t0, Region.box(0, 0, 4, 4), t1, Region.box(6, 0, 10, 4))]
    )


class TestMRegionAtInstant:
    def test_interior_structured(self):
        mr = translating_region()
        r = mregion_atinstant(mr, 5.0)
        assert r.area() == pytest.approx(16.0)
        assert len(r.faces) == 1

    def test_interior_unstructured_fast_path(self):
        mr = translating_region()
        r = mregion_atinstant(mr, 5.0, structured=False)
        assert r.area() == pytest.approx(16.0)

    def test_outside_returns_empty(self):
        mr = translating_region()
        assert mregion_atinstant(mr, 99.0) == Region()

    def test_endpoint_cleanup_path(self):
        from repro.temporal.interpolate import collapse_to_point

        u = collapse_to_point(0.0, Region.box(0, 0, 4, 4), 10.0, (2, 2))
        mr = MovingRegion([u])
        assert mregion_atinstant(mr, 10.0) == Region()
        assert mregion_atinstant(mr, 0.0).area() == pytest.approx(16.0)

    def test_binary_search_over_many_units(self):
        # Zig-zag motion so adjacent unit functions genuinely differ.
        units = []
        for k in range(50):
            t0, t1 = float(k), float(k + 1)
            y0 = float(k % 2)
            y1 = float((k + 1) % 2)
            units.append(
                URegion.between_regions(
                    t0,
                    Region.box(k, y0, k + 2, y0 + 2),
                    t1,
                    Region.box(k + 1, y1, k + 3, y1 + 2),
                ).with_interval(Interval(t0, t1, True, False))
            )
        mr = MovingRegion(units)
        r = mregion_atinstant(mr, 25.5)
        assert r.area() == pytest.approx(4.0)
        assert r.bbox().xmin == pytest.approx(25.5)


class TestAggregates:
    def test_atmin_restricts(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 1, -10, 25)])  # (t-5)²
        got = mreal_atmin(m)
        assert got.deftime() == RangeSet([Interval(5.0, 5.0)])
        assert got.value_at(5.0).value == pytest.approx(0.0)

    def test_atmin_across_units(self):
        m = MovingReal(
            [
                UReal(closed(0.0, 1.0), 0, 0, 3.0),
                UReal(Interval(1.0, 2.0, False, True), 0, -1, 3.0),  # down to 1
            ]
        )
        got = mreal_atmin(m)
        assert got.deftime() == RangeSet([Interval(2.0, 2.0)])

    def test_atmin_constant_keeps_whole_unit(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 0, 7.0)])
        got = mreal_atmin(m)
        assert got.deftime() == RangeSet([closed(0.0, 10.0)])

    def test_atmax(self):
        m = MovingReal([UReal(closed(0.0, 10.0), 0, 1, 0)])
        got = mreal_atmax(m)
        assert got.deftime() == RangeSet([Interval(10.0, 10.0)])

    def test_initial_final_val_inst(self):
        m = MovingReal([UReal(closed(2.0, 10.0), 0, 1, 0)])
        first = initial(m)
        assert val(first).value == pytest.approx(2.0)
        assert inst(first).value == pytest.approx(2.0)
        assert val(final(m)).value == pytest.approx(10.0)

    def test_val_of_none_raises(self):
        with pytest.raises(UndefinedValue):
            val(None)

    def test_empty_atmin(self):
        assert len(mreal_atmin(MovingReal([]))) == 0


class TestNumericLifts:
    def test_area_constant(self):
        mr = translating_region()
        a = mregion_area(mr)
        assert a.value_at(3.0).value == pytest.approx(16.0)

    def test_area_quadratic_under_scaling(self):
        mr = MovingRegion(
            [
                URegion.between_regions(
                    0.0, Region.box(-1, -1, 1, 1), 10.0, Region.box(-3, -3, 3, 3)
                )
            ]
        )
        a = mregion_area(mr)
        # side(t) = 2 + 0.4 t, area = (2 + 0.4t)²: check at several times.
        for t in (0.0, 2.5, 5.0, 7.5, 10.0):
            assert a.value_at(t).value == pytest.approx((2 + 0.4 * t) ** 2, rel=1e-6)

    def test_perimeter_linear(self):
        mr = MovingRegion(
            [
                URegion.between_regions(
                    0.0, Region.box(-1, -1, 1, 1), 10.0, Region.box(-3, -3, 3, 3)
                )
            ]
        )
        p = mregion_perimeter(mr)
        for t in (0.0, 5.0, 10.0):
            assert p.value_at(t).value == pytest.approx(4 * (2 + 0.4 * t), rel=1e-6)

    def test_mline_length(self):
        u = ULine.between_lines(
            0.0, Line([((0, 0), (2, 0))]), 10.0, Line([((0, 5), (6, 5))])
        )
        ml = MovingLine([u])
        ln = mline_length(ml)
        assert ln.value_at(0.0).value == pytest.approx(2.0)
        assert ln.value_at(5.0).value == pytest.approx(4.0)
        assert ln.value_at(10.0).value == pytest.approx(6.0)


class TestProjectionAndAt:
    def test_traversed_translation(self):
        mr = translating_region()
        tr = traversed(mr)
        # 4x4 square sweeping from x∈[0,4] to x∈[6,10]: covers [0,10]×[0,4].
        assert tr.area() == pytest.approx(40.0)

    def test_traversed_stationary(self):
        r = Region.box(0, 0, 2, 2)
        mr = MovingRegion([URegion.stationary(closed(0.0, 5.0), r)])
        assert traversed(mr).area() == pytest.approx(4.0)

    def test_at_region(self):
        mp = MovingPoint.from_waypoints([(0, (-5, 1)), (10, (15, 1))])
        got = mpoint_at_region(mp, Region.box(0, 0, 4, 4))
        assert got.deftime().total_length() == pytest.approx(2.0)
        # While defined, the point is inside the region.
        assert got.value_at(3.5).x == pytest.approx(2.0)

    def test_passes(self):
        mp = MovingPoint.from_waypoints([(0, (-5, 1)), (10, (15, 1))])
        assert passes(mp, Region.box(0, 0, 4, 4))
        assert not passes(mp, Region.box(0, 10, 4, 14))
