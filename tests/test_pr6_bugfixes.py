"""Regression tests for the lifecycle bugs fixed alongside the column
store:

* a crash mid-``pack`` used to leak the freshly created shared-memory
  segment (it exists in the OS namespace before the caller ever gets
  the handle) — now reclaimed and counted ``parallel.shm_reclaimed``;
* ``ColumnCache`` returned columns validated at *build* time only, so a
  fleet mutated between obtaining the column and dispatching a kernel
  (even by its own ``__getitem__`` during the build) silently fed the
  kernel a stale column — now closed by ``get_versioned`` +
  ``revalidate`` at use time;
* ``--workers 0``/negative fell through the CLI into the pool layer,
  and ``--workers`` without ``--backend parallel`` was silently
  ignored — now a one-line ``repro:`` error / warning.
"""

import os

import pytest

from repro import faults, obs
from repro.cli import main as cli_main
from repro.errors import SimulatedCrash
from repro.parallel import shmcol
from repro.vector.cache import (
    Fleet,
    clear_cache,
    column_for_versioned,
    revalidate,
)
from repro.vector.columns import UPointColumn
from repro.vector.fleet import fleet_atinstant, set_backend
from repro.vector.store import clear_store
from repro.workloads.trajectories import random_flights


@pytest.fixture(autouse=True)
def _clean_state():
    faults.disarm()
    faults.reset_fired()
    obs.enable()
    obs.reset()
    clear_cache()
    clear_store()
    set_backend("scalar")
    yield
    faults.disarm()
    faults.reset_fired()
    clear_cache()
    clear_store()
    set_backend("scalar")
    shmcol.release_all()
    obs.reset()
    obs.disable()


def counters():
    return obs.snapshot()["counters"]


def shm_entries():
    """Names of live shared-memory segments (Linux tmpfs mount)."""
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-Linux fallback
        return set()


class TestShmLeakOnPackCrash:
    def test_crash_mid_pack_reclaims_segment(self):
        col = UPointColumn.from_mappings(random_flights(8, seed=3))
        before = shm_entries()
        faults.arm("shmcol.pack_crash")
        with pytest.raises(SimulatedCrash):
            shmcol.pack(col)
        faults.disarm()
        assert shm_entries() == before  # nothing leaked into the OS
        assert counters()["parallel.shm_reclaimed"] == 1

    def test_crash_mid_pack_leaves_registry_clean(self):
        col = UPointColumn.from_mappings(random_flights(4, seed=3))
        faults.arm("shmcol.pack_crash")
        with pytest.raises(SimulatedCrash):
            shmcol.shared_descriptor(col)
        faults.disarm()
        assert shmcol._SEGMENTS == {}
        # And the same column packs fine once the fault is gone.
        desc = shmcol.shared_descriptor(col)
        attached = shmcol.attach(desc)
        try:
            assert attached.column.offsets.tobytes() == \
                col.offsets.tobytes()
        finally:
            attached.close()
        shmcol.release_all()

    def test_mid_loop_crash_also_reclaims(self):
        # after:1 fires on the second array copy — the segment is
        # already partially written when the crash lands.
        col = UPointColumn.from_mappings(random_flights(8, seed=3))
        before = shm_entries()
        faults.arm("shmcol.pack_crash", "after:1")
        with pytest.raises(SimulatedCrash):
            shmcol.pack(col)
        faults.disarm()
        assert shm_entries() == before
        assert counters()["parallel.shm_reclaimed"] == 1


class _SelfMutatingFleet(Fleet):
    """A fleet whose own read path mutates it once, mid-iteration —
    the pathological client the use-time revalidation exists for."""

    __slots__ = ("_armed", "_extra")

    def __init__(self, items, extra):
        super().__init__(items)
        self._armed = True
        self._extra = extra

    def __getitem__(self, i):
        if self._armed and i == 1:
            self._armed = False
            self.append(self._extra)
        return super().__getitem__(i)


class TestCacheUseTimeValidation:
    def test_mutation_between_get_and_use_is_caught(self):
        flights = random_flights(6, seed=5)
        fleet = Fleet(flights[:5])
        version, col = column_for_versioned(fleet, "upoint")
        assert len(col.offsets) == 6  # 5 objects + 1
        fleet.append(flights[5])  # the TOCTOU window
        fresh = revalidate(fleet, "upoint", version, col)
        assert len(fresh.offsets) == len(fleet) + 1
        # The stale column was caught either way: a tail append takes
        # the splice-forward path, anything else a full invalidation.
        counts = counters()
        assert (counts.get("colcache.extended", 0)
                + counts.get("colcache.invalidations", 0)) >= 1

    def test_unchanged_fleet_keeps_column(self):
        fleet = Fleet(random_flights(4, seed=5))
        version, col = column_for_versioned(fleet, "upoint")
        assert revalidate(fleet, "upoint", version, col) is col

    def test_plain_sequences_pass_through(self):
        flights = random_flights(3, seed=5)
        version, col = column_for_versioned(flights, "upoint")
        assert version is None
        assert revalidate(flights, "upoint", version, col) is col

    def test_query_over_self_mutating_fleet_matches_scalar(self):
        flights = random_flights(7, seed=5)
        fleet = _SelfMutatingFleet(flights[:6], flights[6])
        result = fleet_atinstant(fleet, 1.5, backend="vector")
        # By dispatch time the fleet holds all 7 members; the result
        # must describe that final membership, not the stale column
        # built while the mutation was happening.
        assert len(fleet) == 7
        assert len(result) == 7
        scalar = [m.value_at(1.5) for m in list(fleet)]
        for got, want in zip(result, scalar):
            if want is None:
                assert got is None
            else:
                assert got.x == want.x and got.y == want.y


class TestWorkersFlagValidation:
    @pytest.mark.parametrize("n", ["0", "-2"])
    def test_non_positive_workers_rejected(self, n, capsys):
        rc = cli_main(["--backend", "parallel", "--workers", n,
                       "snapshot", "--objects", "4"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: InvalidValue: --workers")
        assert f"got {n}" in err

    def test_workers_without_parallel_backend_warns(self, capsys):
        rc = cli_main(["--backend", "vector", "--workers", "2",
                       "snapshot", "--objects", "4"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "repro: warning: --workers only affects" in err
        assert "vector" in err

    def test_workers_without_any_backend_warns_default(self, capsys):
        rc = cli_main(["--workers", "2", "snapshot", "--objects", "4"])
        assert rc == 0
        assert "default backend ignores it" in capsys.readouterr().err

    def test_parallel_backend_with_workers_silent(self, capsys):
        rc = cli_main(["--backend", "parallel", "--workers", "2",
                       "snapshot", "--objects", "4"])
        assert rc == 0
        assert "warning" not in capsys.readouterr().err
