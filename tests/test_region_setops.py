"""Tests for the regularized boolean set operations on regions."""

import pytest

from repro.spatial.region import Region


class TestUnion:
    def test_disjoint(self):
        a, b = Region.box(0, 0, 2, 2), Region.box(5, 5, 7, 7)
        u = a.union(b)
        assert len(u) == 2
        assert u.area() == pytest.approx(8.0)

    def test_overlapping(self):
        a, b = Region.box(0, 0, 4, 4), Region.box(2, 2, 6, 6)
        u = a.union(b)
        assert len(u) == 1
        assert u.area() == pytest.approx(16 + 16 - 4)

    def test_contained(self):
        a, b = Region.box(0, 0, 10, 10), Region.box(2, 2, 4, 4)
        assert a.union(b).area() == pytest.approx(100.0)

    def test_with_empty(self):
        a = Region.box(0, 0, 2, 2)
        assert a.union(Region()) == a
        assert Region().union(a) == a

    def test_union_fills_hole(self):
        holed = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        plug = Region.box(4, 4, 6, 6)
        u = holed.union(plug)
        assert u.area() == pytest.approx(100.0)
        assert not u.faces[0].holes

    def test_shared_edge_merges(self):
        a, b = Region.box(0, 0, 2, 2), Region.box(2, 0, 4, 2)
        u = a.union(b)
        assert u.area() == pytest.approx(8.0)
        assert len(u) == 1


class TestIntersection:
    def test_overlap(self):
        a, b = Region.box(0, 0, 4, 4), Region.box(2, 2, 6, 6)
        i = a.intersection(b)
        assert i.area() == pytest.approx(4.0)

    def test_disjoint_is_empty(self):
        a, b = Region.box(0, 0, 1, 1), Region.box(5, 5, 6, 6)
        assert not a.intersection(b)

    def test_edge_touch_is_regularized_away(self):
        # Sharing only a boundary edge: interior intersection is empty.
        a, b = Region.box(0, 0, 2, 2), Region.box(2, 0, 4, 2)
        assert not a.intersection(b)

    def test_hole_excluded(self):
        holed = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        probe = Region.box(3, 3, 7, 7)
        i = holed.intersection(probe)
        assert i.area() == pytest.approx(16 - 4)


class TestDifference:
    def test_bite(self):
        a, b = Region.box(0, 0, 4, 4), Region.box(2, 2, 6, 6)
        d = a.difference(b)
        assert d.area() == pytest.approx(12.0)

    def test_hole_punch(self):
        a, b = Region.box(0, 0, 10, 10), Region.box(4, 4, 6, 6)
        d = a.difference(b)
        assert d.area() == pytest.approx(96.0)
        assert len(d.faces[0].holes) == 1

    def test_full_cover_empty(self):
        a, b = Region.box(2, 2, 3, 3), Region.box(0, 0, 10, 10)
        assert not a.difference(b)

    def test_split_into_two_faces(self):
        a = Region.box(0, 0, 10, 2)
        b = Region.box(4, -1, 6, 3)  # vertical cut through the strip
        d = a.difference(b)
        assert len(d) == 2
        assert d.area() == pytest.approx(20 - 4)

    def test_inclusion_exclusion(self):
        a, b = Region.box(0, 0, 5, 5), Region.box(3, 1, 8, 4)
        total = a.union(b).area()
        assert total == pytest.approx(
            a.area() + b.area() - a.intersection(b).area()
        )


class TestIntersects:
    def test_overlapping(self):
        assert Region.box(0, 0, 4, 4).intersects(Region.box(2, 2, 6, 6))

    def test_disjoint(self):
        assert not Region.box(0, 0, 1, 1).intersects(Region.box(5, 5, 6, 6))

    def test_boundary_touch_counts(self):
        assert Region.box(0, 0, 2, 2).intersects(Region.box(2, 0, 4, 2))
