"""WAL semantics and crash recovery of the tuple store and catalog."""

import pytest

from repro import faults, obs
from repro.db.catalog import Database
from repro.errors import SimulatedCrash, StorageError, WalError
from repro.storage import wal as walmod
from repro.storage.pages import PageFile
from repro.storage.tuplestore import TupleStore
from repro.storage.wal import Wal
from repro.temporal.mapping import MovingPoint

SCHEMA = [("name", "string"), ("track", "mpoint")]


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    faults.reset_fired()
    yield
    faults.disarm()
    faults.reset_fired()


def track(a: float) -> MovingPoint:
    return MovingPoint.from_waypoints(
        [(0, (a, a)), (5, (a + 3, a + 4)), (9, (a, a))]
    )


def make_store(wal: Wal, pf=None):
    pf = pf if pf is not None else PageFile(page_size=256)
    store = TupleStore(
        SCHEMA, pf, buffer_capacity=8, inline_threshold=32,
        wal=wal, wal_scope="rel:t",
    )
    return store, pf


def rows_of(store):
    return [(r[0].value, len(r[1].units)) for r in store.scan()]


class TestWalFraming:
    def test_append_buffers_sync_persists(self):
        wal = Wal()
        wal.append(walmod.BEGIN, scope="rel:t")
        wal.append(walmod.TUPLE, b"abc", scope="rel:t")
        assert wal.pending_records == 2
        assert wal.durable_bytes == 0
        assert list(wal.records()) == []
        wal.sync()
        assert wal.pending_records == 0
        recs = list(wal.records())
        assert [r.type_name for r in recs] == ["BEGIN", "TUPLE"]
        assert recs[1].payload == b"abc"
        assert recs[1].scope == "rel:t"

    def test_crash_loses_exactly_the_unsynced_suffix(self):
        wal = Wal()
        wal.append(walmod.BEGIN)
        wal.sync()
        wal.append(walmod.COMMIT)
        wal.crash()
        assert [r.type_name for r in wal.records()] == ["BEGIN"]

    def test_unknown_record_type_rejected(self):
        with pytest.raises(WalError):
            Wal().append(99)

    def test_torn_tail_terminates_replay(self):
        wal = Wal()
        wal.append(walmod.BEGIN)
        wal.sync()
        wal.append(walmod.TUPLE, b"x" * 50)
        wal.append(walmod.COMMIT)
        with faults.injected("wal.torn_tail"):
            with pytest.raises(SimulatedCrash):
                wal.sync()
        # The intact prefix survives; the torn batch is discarded whole
        # (its COMMIT was cut, so nothing of the transaction is visible).
        assert [r.type_name for r in wal.records()] == ["BEGIN"]

    def test_torn_tail_is_counted(self):
        wal = Wal()
        wal.append(walmod.TUPLE, b"y" * 80)
        with faults.injected("wal.torn_tail"):
            with pytest.raises(SimulatedCrash):
                wal.sync()
        obs.reset()
        obs.enable()
        try:
            list(wal.records())
            assert obs.counters.get("wal.truncated_tails") == 1
        finally:
            obs.disable()

    def test_file_backed_reopen_appends_after_valid_prefix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with Wal(path) as wal:
            wal.append(walmod.BEGIN, scope="rel:t")
            wal.sync()
        # Simulate a torn tail on disk: garbage after the valid prefix.
        with open(path, "ab") as f:
            f.write(b"\x07garbage")
        with Wal(path) as wal:
            assert [r.type_name for r in wal.records()] == ["BEGIN"]
            wal.append(walmod.COMMIT, scope="rel:t")
            wal.sync()
            assert [r.type_name for r in wal.records()] == ["BEGIN", "COMMIT"]


class TestTupleStoreRecovery:
    def test_committed_tuples_survive(self):
        wal = Wal()
        store, pf = make_store(wal)
        store.append(["a", track(0.0)])
        store.append(["b", track(10.0)])
        recovered = TupleStore.recover(
            SCHEMA, pf, wal, wal_scope="rel:t", inline_threshold=32
        )
        assert rows_of(recovered) == rows_of(store)

    def test_recovery_rebuilds_pages_from_redo_images(self):
        # Even a *fresh* page file recovers: every committed FLOB page
        # was logged as a physical image.
        wal = Wal()
        store, _pf = make_store(wal)
        store.append(["a", track(0.0)])
        fresh = PageFile(page_size=256)
        recovered = TupleStore.recover(
            SCHEMA, fresh, wal, wal_scope="rel:t", inline_threshold=32
        )
        assert rows_of(recovered) == rows_of(store)
        fresh.verify_all()

    def test_checkpoint_plus_redo(self):
        wal = Wal()
        store, pf = make_store(wal)
        store.append(["a", track(0.0)])
        store.checkpoint()
        store.append(["b", track(10.0)])
        recovered = TupleStore.recover(
            SCHEMA, pf, wal, wal_scope="rel:t", inline_threshold=32
        )
        assert rows_of(recovered) == [("a", 2), ("b", 2)]

    def test_uncommitted_transaction_invisible(self):
        wal = Wal()
        store, pf = make_store(wal)
        store.append(["a", track(0.0)])
        with faults.injected("wal.sync_crash"):
            with pytest.raises(SimulatedCrash):
                store.append(["doomed", track(20.0)])
        wal.crash()
        recovered = TupleStore.recover(
            SCHEMA, pf, wal, wal_scope="rel:t", inline_threshold=32
        )
        assert rows_of(recovered) == [("a", 2)]

    def test_scopes_do_not_cross_contaminate(self):
        wal = Wal()
        store_a, pf_a = make_store(wal)
        pf_b = PageFile(page_size=256)
        store_b = TupleStore(
            SCHEMA, pf_b, buffer_capacity=8, inline_threshold=32,
            wal=wal, wal_scope="rel:other",
        )
        store_a.append(["a", track(0.0)])
        store_b.append(["b", track(10.0)])
        rec_a = TupleStore.recover(
            SCHEMA, pf_a, wal, wal_scope="rel:t", inline_threshold=32
        )
        rec_b = TupleStore.recover(
            SCHEMA, pf_b, wal, wal_scope="rel:other", inline_threshold=32
        )
        assert rows_of(rec_a) == [("a", 2)]
        assert rows_of(rec_b) == [("b", 2)]

    def test_recovery_counted(self):
        wal = Wal()
        store, pf = make_store(wal)
        store.append(["a", track(0.0)])
        obs.reset()
        obs.enable()
        try:
            TupleStore.recover(
                SCHEMA, pf, wal, wal_scope="rel:t", inline_threshold=32
            )
            assert obs.counters.get("wal.recovered") == 1
        finally:
            obs.disable()

    def test_checkpoint_without_wal_rejected(self):
        store = TupleStore(SCHEMA, PageFile(page_size=256))
        with pytest.raises(StorageError):
            store.checkpoint()


class TestQuarantine:
    def _store_with_bad_tuple(self):
        wal = Wal()
        store, _pf = make_store(wal)
        store.append(["good", track(0.0)])
        store.append(["bad", track(10.0)])
        store.append(["fine", track(20.0)])
        # Rot the middle tuple's directory bytes: cut its FLOB reference
        # short, which the bounds-checked fetch must detect.
        store._tuples[1] = store._tuples[1][:-4]
        return store

    def test_strict_scan_raises(self):
        store = self._store_with_bad_tuple()
        with pytest.raises(StorageError):
            list(store.scan())

    def test_non_strict_scan_quarantines_and_counts(self):
        store = self._store_with_bad_tuple()
        obs.reset()
        obs.enable()
        try:
            rows = [(r[0].value, len(r[1].units))
                    for r in store.scan(strict=False)]
            assert rows == [("good", 2), ("fine", 2)]
            assert obs.counters.get("storage.quarantined") == 1
        finally:
            obs.disable()

    def test_exhausted_transient_retries_quarantine_non_strict(self):
        wal = Wal()
        store, _pf = make_store(wal)
        store.append(["a", track(0.0)])
        store.buffer_pool.flush()
        # Drop the cached frames so the scan performs physical reads;
        # every:1 makes every retry attempt fail, exhausting the budget.
        store.buffer_pool._frames.clear()
        faults.arm("pagefile.read_transient", "every:1")
        obs.reset()
        obs.enable()
        try:
            assert list(store.scan(strict=False)) == []
            assert obs.counters.get("storage.quarantined") == 1
            assert obs.counters.get("buffer.retries") >= 1
        finally:
            obs.disable()
            faults.disarm()
        faults.arm("pagefile.read_transient", "every:1")
        try:
            with pytest.raises(StorageError):
                list(store.scan())
        finally:
            faults.disarm()


class TestDatabaseRecovery:
    def test_catalog_and_data_recovered(self):
        wal = Wal()
        db = Database(wal=wal)
        db.create_relation("ships", SCHEMA, materialized=True,
                           inline_threshold=32)
        db.create_relation("transient", SCHEMA)
        db.relation("ships").insert(["a", track(0.0)])
        db.drop_relation("transient")
        recovered = Database.recover(wal)
        assert recovered.relation_names() == ["ships"]
        rows = recovered.relation("ships").rows()
        assert len(rows) == 1 and rows[0]["name"].value == "a"

    def test_create_crash_is_atomic(self):
        wal = Wal()
        db = Database(wal=wal)
        db.create_relation("kept", SCHEMA, materialized=True,
                           inline_threshold=32)
        with faults.injected("catalog.create_crash"):
            with pytest.raises(SimulatedCrash):
                db.create_relation("doomed", SCHEMA)
        wal.crash()
        recovered = Database.recover(wal)
        assert "doomed" not in recovered
        assert "kept" in recovered

    def test_query_strict_flag_threads_to_scan(self):
        wal = Wal()
        db = Database(wal=wal)
        db.create_relation("ships", SCHEMA, materialized=True,
                           inline_threshold=32)
        rel = db.relation("ships")
        rel.insert(["good", track(0.0)])
        rel.insert(["bad", track(10.0)])
        rel.store._tuples[1] = rel.store._tuples[1][:-4]
        with pytest.raises(StorageError):
            db.query("SELECT name FROM ships")
        rows = db.query("SELECT name FROM ships", strict=False)
        assert [r["name"].value for r in rows] == ["good"]
