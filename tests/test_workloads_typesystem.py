"""Tests for the workload generators and the executable type system."""

import pytest

from repro.errors import TypeMismatch
from repro.spatial.region import Region
from repro.temporal.interpolate import collapse_to_point, interpolate_convex
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.typesystem import (
    ABSTRACT_SIGNATURE,
    DISCRETE_SIGNATURE,
    TypeTerm,
    discrete_of,
    implementation_of,
    parse_type,
)
from repro.workloads.network import RoadNetwork
from repro.workloads.regions import StormGenerator, random_storms, regular_polygon
from repro.workloads.trajectories import FlightGenerator, random_flights


class TestFlights:
    def test_reproducible(self):
        a = random_flights(3, legs=4, seed=9)
        b = random_flights(3, legs=4, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_flights(1, seed=1) != random_flights(1, seed=2)

    def test_unit_count(self):
        f = FlightGenerator(seed=0).flight(legs=7)
        assert 1 <= len(f) <= 7

    def test_within_airspace(self):
        gen = FlightGenerator(seed=3)
        f = gen.flight(legs=5)
        for u in f.units:
            for p in (u.start_point(), u.end_point()):
                assert gen.airspace.contains_point(p)

    def test_stagger(self):
        fleet = FlightGenerator(seed=0).fleet(3, legs=2, stagger=100.0)
        starts = [f.start_time() for f in fleet]
        assert starts == [0.0, 100.0, 200.0]


class TestStorms:
    def test_reproducible(self):
        assert random_storms(2, phases=3, seed=5) == random_storms(2, phases=3, seed=5)

    def test_valid_region_at_all_times(self):
        storm = StormGenerator(seed=1).storm(phases=4)
        t0, t1 = storm.start_time(), storm.end_time()
        for k in range(9):
            t = t0 + (t1 - t0) * k / 8.0
            r = storm.value_at(t)
            assert r is not None and r.area() > 0

    def test_continuity_across_units(self):
        storm = StormGenerator(seed=2).storm(phases=3)
        for a, b in zip(storm.units, storm.units[1:]):
            t = b.interval.s
            ra = a._iota(t)
            rb = b.value_at(t)
            assert ra.area() == pytest.approx(rb.area(), rel=1e-9)

    def test_with_hole(self):
        storm = StormGenerator(seed=3).storm(phases=2, with_hole=True)
        r = storm.value_at(storm.start_time() + 1.0)
        assert len(r.faces[0].holes) == 1

    def test_regular_polygon(self):
        r = regular_polygon((0, 0), 10.0, sides=64)
        import math

        assert r.area() == pytest.approx(math.pi * 100.0, rel=0.01)


class TestNetwork:
    def test_reproducible(self):
        a = RoadNetwork(rows=4, cols=4, seed=1).trips(3)
        b = RoadNetwork(rows=4, cols=4, seed=1).trips(3)
        assert a == b

    def test_trips_follow_edges(self):
        net = RoadNetwork(rows=4, cols=4, seed=2)
        trip = net.random_trip()
        node_positions = set(net.positions.values())
        assert trip.units[0].start_point() in node_positions
        assert trip.units[-1].end_point() in node_positions

    def test_constant_speed(self):
        net = RoadNetwork(rows=3, cols=3, seed=4)
        trip = net.random_trip(speed=10.0)
        for u in trip.units:
            assert u.speed == pytest.approx(10.0)


class TestInterpolation:
    def test_area_continuity(self):
        r0 = regular_polygon((0, 0), 10, 5)
        r1 = regular_polygon((8, 3), 4, 7)
        u = interpolate_convex(0.0, r0, 10.0, r1)
        assert u._iota(1e-9).area() == pytest.approx(r0.area(), rel=1e-3)
        assert u._iota(10 - 1e-9).area() == pytest.approx(r1.area(), rel=1e-3)

    def test_collapse(self):
        u = collapse_to_point(0.0, regular_polygon((0, 0), 5, 6), 4.0, (0, 0))
        assert u.value_at(4.0) == Region()
        assert u.value_at(2.0).area() > 0

    def test_non_convex_rejected(self):
        from repro.errors import InvalidValue

        concave = Region.polygon([(0, 0), (4, 0), (4, 4), (2, 1), (0, 4)])
        with pytest.raises(InvalidValue):
            interpolate_convex(0.0, concave, 1.0, regular_polygon((0, 0), 1, 4))


class TestTypeSystem:
    def test_table1_atoms(self):
        names = {str(t) for t in ABSTRACT_SIGNATURE.atomic_types()}
        assert names == {
            "int", "real", "string", "bool",
            "point", "points", "line", "region", "instant",
        }

    def test_table1_constructors(self):
        assert ABSTRACT_SIGNATURE.is_well_formed(parse_type("moving(point)"))
        assert ABSTRACT_SIGNATURE.is_well_formed(parse_type("range(instant)"))
        assert not ABSTRACT_SIGNATURE.is_well_formed(parse_type("moving(instant)"))
        assert not ABSTRACT_SIGNATURE.is_well_formed(parse_type("range(region)"))

    def test_table2_units(self):
        for u in ("ureal", "upoint", "upoints", "uline", "uregion"):
            assert DISCRETE_SIGNATURE.is_well_formed(parse_type(u))
        assert DISCRETE_SIGNATURE.is_well_formed(parse_type("mapping(upoint)"))
        assert DISCRETE_SIGNATURE.is_well_formed(parse_type("mapping(const(int))"))
        assert not DISCRETE_SIGNATURE.is_well_formed(parse_type("mapping(point)"))
        assert not DISCRETE_SIGNATURE.is_well_formed(parse_type("moving(point)"))

    def test_table3_correspondence(self):
        cases = {
            "moving(int)": "mapping(const(int))",
            "moving(string)": "mapping(const(string))",
            "moving(bool)": "mapping(const(bool))",
            "moving(real)": "mapping(ureal)",
            "moving(point)": "mapping(upoint)",
            "moving(points)": "mapping(upoints)",
            "moving(line)": "mapping(uline)",
            "moving(region)": "mapping(uregion)",
        }
        for abstract, discrete in cases.items():
            assert str(discrete_of(parse_type(abstract))) == discrete

    def test_non_moving_passes_through(self):
        assert str(discrete_of(parse_type("range(instant)"))) == "range(instant)"
        assert str(discrete_of(parse_type("region"))) == "region"

    def test_every_discrete_type_has_an_implementation(self):
        for term in DISCRETE_SIGNATURE.all_types(max_depth=3):
            kind = DISCRETE_SIGNATURE.kind_of(term)
            impl = implementation_of(term)
            assert impl is not None, f"no implementation for {term} ({kind})"

    def test_kind_of_rejects_garbage(self):
        with pytest.raises(TypeMismatch):
            DISCRETE_SIGNATURE.kind_of(parse_type("mapping(mapping(upoint))"))
