"""Tests for const units, MPoint/MSeg, upoint, and upoints (Section 3.2.6)."""

import pytest

from repro.base.values import BoolVal, IntVal, StringVal
from repro.errors import InvalidValue
from repro.ranges.interval import Interval, closed, interval_at
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.uconst import ConstUnit
from repro.temporal.upoint import UPoint
from repro.temporal.upoints import UPoints


class TestConstUnit:
    def test_constant_function(self):
        u = ConstUnit(closed(0.0, 10.0), IntVal(7))
        assert u.value_at(5.0) == IntVal(7)
        assert u.value_at(0.0) == IntVal(7)

    def test_outside_interval_none(self):
        u = ConstUnit(closed(0.0, 10.0), IntVal(7))
        assert u.value_at(11.0) is None

    def test_rejects_undefined(self):
        # Units never carry ⊥: absence of a unit encodes undefined.
        with pytest.raises(InvalidValue):
            ConstUnit(closed(0.0, 1.0), IntVal())
        with pytest.raises(InvalidValue):
            ConstUnit(closed(0.0, 1.0), None)

    def test_of_wraps_scalars(self):
        u = ConstUnit.of(closed(0.0, 1.0), True)
        assert isinstance(u.value, BoolVal)

    def test_same_function(self):
        a = ConstUnit(closed(0.0, 1.0), IntVal(1))
        b = ConstUnit(closed(5.0, 6.0), IntVal(1))
        c = ConstUnit(closed(5.0, 6.0), IntVal(2))
        assert a.same_function(b)
        assert not a.same_function(c)

    def test_restriction(self):
        u = ConstUnit(closed(0.0, 10.0), StringVal("x"))
        r = u.restricted(closed(2.0, 3.0))
        assert r.interval == closed(2.0, 3.0) and r.value == StringVal("x")


class TestMPoint:
    def test_evaluation(self):
        m = MPoint(1.0, 2.0, 3.0, -1.0)
        assert m.at(0.0) == (1.0, 3.0)
        assert m.at(2.0) == (5.0, 1.0)

    def test_linear_between(self):
        m = MPoint.linear_between(0.0, (0, 0), 10.0, (10, 20))
        assert m.at(5.0) == pytest.approx((5.0, 10.0))

    def test_linear_between_zero_span_same_point(self):
        m = MPoint.linear_between(1.0, (2, 3), 1.0, (2, 3))
        assert m.is_stationary()

    def test_linear_between_zero_span_distinct_rejected(self):
        with pytest.raises(InvalidValue):
            MPoint.linear_between(1.0, (0, 0), 1.0, (1, 1))

    def test_stationary(self):
        m = MPoint.stationary((4, 5))
        assert m.is_stationary() and m.at(100.0) == (4.0, 5.0)

    def test_speed(self):
        m = MPoint(0, 3, 0, 4)
        assert m.speed == 5.0

    def test_coincidence_identical(self):
        m = MPoint(0, 1, 0, 1)
        assert m.coincidence_times(MPoint(0, 1, 0, 1)) is None

    def test_coincidence_crossing(self):
        a = MPoint(0, 1, 0, 0)  # (t, 0)
        b = MPoint(10, -1, 0, 0)  # (10 - t, 0)
        assert a.coincidence_times(b) == [5.0]

    def test_coincidence_parallel_never(self):
        a = MPoint(0, 1, 0, 0)
        b = MPoint(1, 1, 0, 0)
        assert a.coincidence_times(b) == []

    def test_coincidence_mismatched_times(self):
        a = MPoint(0, 1, 0, 0)  # x = t, y = 0
        b = MPoint(10, -1, 1, 0)  # x = 10 - t, y = 1
        assert a.coincidence_times(b) == []

    def test_distance_sq_quad(self):
        a = MPoint(0, 1, 0, 0)
        b = MPoint(0, 0, 0, 0)
        # distance² = t²
        assert a.distance_sq_quad(b) == pytest.approx((1.0, 0.0, 0.0))


class TestMSeg:
    def test_valid_translation(self):
        m = MSeg.between_segments(0.0, ((0, 0), (1, 0)), 10.0, ((5, 5), (6, 5)))
        assert m.seg_at(0.0) == ((0.0, 0.0), (1.0, 0.0))

    def test_rotation_rejected(self):
        # The segment turns 90 degrees: trajectories are not coplanar.
        with pytest.raises(InvalidValue):
            MSeg.between_segments(0.0, ((0, 0), (2, 0)), 10.0, ((10, 0), (10, 2)))

    def test_scaling_is_coplanar(self):
        m = MSeg.between_segments(0.0, ((0, 0), (2, 0)), 10.0, ((0, 0), (6, 0)))
        assert m.seg_at(5.0) == ((0.0, 0.0), (4.0, 0.0))

    def test_triangle_degeneracy(self):
        m = MSeg.between_segments(0.0, ((0, 0), (2, 0)), 10.0, ((1, 5), (1, 5)))
        assert m.seg_at(10.0) is None
        assert m.degenerate_times() == [10.0]

    def test_identical_endpoints_rejected(self):
        p = MPoint(0, 1, 0, 1)
        with pytest.raises(InvalidValue):
            MSeg(p, p)

    def test_stationary(self):
        m = MSeg.stationary(((0, 0), (1, 1)))
        assert m.seg_at(42.0) == ((0.0, 0.0), (1.0, 1.0))


class TestUPoint:
    def test_between(self):
        u = UPoint.between(0.0, (0, 0), 10.0, (10, 0))
        assert u.value_at(5.0) == Point(5, 0)

    def test_outside_none(self):
        u = UPoint.between(0.0, (0, 0), 10.0, (10, 0))
        assert u.value_at(-1.0) is None

    def test_start_end_points(self):
        u = UPoint.between(0.0, (0, 0), 10.0, (10, 4))
        assert u.start_point() == (0.0, 0.0)
        assert u.end_point() == (10.0, 4.0)

    def test_speed(self):
        u = UPoint.between(0.0, (0, 0), 1.0, (3, 4))
        assert u.speed == 5.0

    def test_bounding_cube(self):
        u = UPoint.between(2.0, (0, 1), 6.0, (4, 3))
        c = u.bounding_cube()
        assert (c.xmin, c.ymin, c.tmin, c.xmax, c.ymax, c.tmax) == (0, 1, 2, 4, 3, 6)

    def test_stationary(self):
        u = UPoint.stationary(closed(0.0, 5.0), (1, 2))
        assert u.value_at(3.0) == Point(1, 2)

    def test_restriction_keeps_motion(self):
        u = UPoint.between(0.0, (0, 0), 10.0, (10, 0))
        r = u.restricted(closed(4.0, 6.0))
        assert r.value_at(5.0) == Point(5, 0)


class TestUPoints:
    def test_evaluation_is_points(self):
        u = UPoints(
            closed(0.0, 10.0),
            [MPoint(0, 1, 0, 0), MPoint(0, 1, 5, 0)],
        )
        assert u.value_at(2.0) == Points([(2, 0), (2, 5)])

    def test_needs_at_least_one(self):
        with pytest.raises(InvalidValue):
            UPoints(closed(0.0, 1.0), [])

    def test_identical_motions_deduplicated(self):
        # M is a set: listing the same moving point twice is one element.
        u = UPoints(closed(0.0, 1.0), [MPoint(0, 1, 0, 0), MPoint(0, 1, 0, 0)])
        assert len(u) == 1

    def test_crossing_inside_open_interval_rejected(self):
        # Paths cross at t=5, interior to [0, 10].
        with pytest.raises(InvalidValue):
            UPoints(
                closed(0.0, 10.0),
                [MPoint(0, 1, 0, 0), MPoint(10, -1, 0, 0)],
            )

    def test_crossing_at_endpoint_allowed(self):
        # Collapse exactly at the interval end: condition (i) only
        # constrains the open interval.
        u = UPoints(
            closed(0.0, 5.0),
            [MPoint(0, 1, 0, 0), MPoint(10, -1, 0, 0)],
        )
        # At the endpoint the two coincide; the set collapses to one point.
        assert len(u.value_at(5.0)) == 1
        assert len(u.value_at(2.0)) == 2

    def test_instant_unit_distinctness(self):
        # Condition (ii): a single-instant unit needs distinct points there.
        with pytest.raises(InvalidValue):
            UPoints(
                interval_at(5.0),
                [MPoint(0, 1, 0, 0), MPoint(10, -1, 0, 0)],
            )

    def test_instant_unit_valid(self):
        u = UPoints(interval_at(1.0), [MPoint(0, 1, 0, 0), MPoint(5, 0, 5, 0)])
        assert len(u.value_at(1.0)) == 2

    def test_motions_sorted(self):
        u = UPoints(
            closed(0.0, 1.0), [MPoint(5, 0, 5, 0), MPoint(0, 0, 0, 0)]
        )
        keys = [m.sort_key() for m in u.motions]
        assert keys == sorted(keys)
