"""Tests for the quadratic polynomial utilities."""

import pytest

from repro.temporal.quadratics import (
    add_quad,
    common_roots,
    eval_quad,
    is_zero_quad,
    mul_linear,
    quad_extremum,
    quad_nonnegative_on,
    quad_range_on,
    roots_in_interval,
    sign_intervals,
    solve_quadratic,
    sub_quad,
)


class TestBasics:
    def test_eval(self):
        assert eval_quad((1, 2, 3), 2.0) == 11.0

    def test_add_sub_scale(self):
        assert add_quad((1, 2, 3), (4, 5, 6)) == (5, 7, 9)
        assert sub_quad((4, 5, 6), (1, 2, 3)) == (3, 3, 3)

    def test_mul_linear(self):
        # (2t + 1)(3t + 4) = 6t² + 11t + 4
        assert mul_linear((2, 1), (3, 4)) == (6, 11, 4)

    def test_is_zero(self):
        assert is_zero_quad((0.0, 0.0, 0.0))
        assert not is_zero_quad((0.0, 0.0, 1e-3))


class TestRoots:
    def test_two_roots(self):
        assert solve_quadratic(1, -3, 2) == pytest.approx([1.0, 2.0])

    def test_double_root(self):
        assert solve_quadratic(1, -2, 1) == pytest.approx([1.0])

    def test_no_real_roots(self):
        assert solve_quadratic(1, 0, 1) == []

    def test_linear_case(self):
        assert solve_quadratic(0, 2, -4) == [2.0]

    def test_constant_case(self):
        assert solve_quadratic(0, 0, 5) == []
        assert solve_quadratic(0, 0, 0) == []

    def test_numerically_tough(self):
        # Large b: the citardauq form keeps the small root accurate.
        roots = solve_quadratic(1.0, -1e8, 1.0)
        assert len(roots) == 2
        assert roots[0] == pytest.approx(1e-8, rel=1e-6)

    def test_roots_in_interval_open(self):
        got = roots_in_interval((1, -3, 2), 1.0, 3.0, open_ends=True)
        assert got == [2.0]  # root at 1.0 excluded by openness

    def test_roots_in_interval_closed(self):
        got = roots_in_interval((1, -3, 2), 1.0, 3.0, open_ends=False)
        assert got == pytest.approx([1.0, 2.0])


class TestAnalysis:
    def test_extremum(self):
        t, v = quad_extremum((1, -4, 5))
        assert (t, v) == (2.0, 1.0)

    def test_extremum_of_linear_is_none(self):
        assert quad_extremum((0, 2, 1)) is None

    def test_range_on_interval_with_vertex(self):
        mn, mx = quad_range_on((1, -4, 5), 0.0, 4.0)
        assert mn == 1.0 and mx == 5.0

    def test_range_on_interval_without_vertex(self):
        mn, mx = quad_range_on((1, -4, 5), 3.0, 4.0)
        assert mn == 2.0 and mx == 5.0

    def test_nonnegative(self):
        assert quad_nonnegative_on((1, 0, 0), -1.0, 1.0)
        assert not quad_nonnegative_on((1, 0, -1), -1.0, 1.0)

    def test_sign_intervals(self):
        got = sign_intervals((1, -3, 2), 0.0, 3.0)
        signs = [s for _a, _b, s in got]
        assert signs == [1, -1, 1]

    def test_sign_intervals_identically_zero(self):
        assert sign_intervals((0, 0, 0), 0.0, 1.0) == [(0.0, 1.0, 0)]


class TestCommonRoots:
    def test_shared_root(self):
        q1 = (1, -3, 2)  # roots 1, 2
        q2 = (1, -4, 4)  # root 2
        assert common_roots([q1, q2], 0.0, 5.0) == [2.0]

    def test_no_shared_root(self):
        q1 = (1, -3, 2)
        q2 = (0, 1, -10)
        assert common_roots([q1, q2], 0.0, 5.0) == []

    def test_all_zero_returns_none(self):
        assert common_roots([(0, 0, 0), (0, 0, 0)], 0.0, 1.0) is None

    def test_zero_member_ignored(self):
        q1 = (0, 0, 0)
        q2 = (0, 1, -2)
        assert common_roots([q1, q2], 0.0, 5.0) == [2.0]
