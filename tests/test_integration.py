"""End-to-end integration tests across the whole stack.

Workload generators → operation algebra → storage → SQL: the paths a
real moving objects database exercises together.
"""

import pytest

from repro.base.values import StringVal
from repro.db import Database
from repro.db.executor import CrossProduct, IndexFilteredProduct, Select, SeqScan
from repro.db.expressions import Call, Column, Compare, Literal
from repro.index.unitindex import MovingObjectIndex
from repro.ops.distance import closest_approach, mpoint_distance
from repro.ops.inside import inside
from repro.spatial.bbox import Rect
from repro.spatial.region import Region
from repro.storage.records import StoredValue, pack_value, unpack_value
from repro.temporal.mapping import MovingPoint
from repro.workloads.network import RoadNetwork
from repro.workloads.regions import StormGenerator
from repro.workloads.trajectories import FlightGenerator, random_flights


class TestFlightsPipeline:
    def test_fleet_through_storage_and_queries(self):
        flights = random_flights(8, legs=5, seed=42)
        db = Database()
        rel = db.create_relation(
            "planes",
            [("airline", "string"), ("id", "string"), ("flight", "mpoint")],
            materialized=True,
        )
        for i, f in enumerate(flights):
            airline = "Lufthansa" if i % 2 == 0 else "AirFrance"
            rel.insert([StringVal(airline), StringVal(f"F{i}"), f])

        rows = db.query(
            "SELECT id, length(trajectory(flight)) AS dist FROM planes "
            "WHERE airline = 'Lufthansa'"
        )
        assert len(rows) == 4
        for r in rows:
            assert r["dist"] > 0

        stats = rel.storage_stats()
        assert stats["tuples"] == 8

    def test_join_results_match_with_and_without_index(self):
        flights = random_flights(10, legs=4, seed=7)
        db = Database()
        rel = db.create_relation("f", [("id", "string"), ("flight", "mpoint")])
        for i, f in enumerate(flights):
            rel.insert([StringVal(f"F{i:02d}"), f])

        predicate = Compare(
            "<",
            Column("a.id"),
            Column("b.id"),
        )
        close_pred = Call(
            "ever_closer_than",
            (Column("a.flight"), Column("b.flight"), Literal(500.0)),
        )
        from repro.db.expressions import And

        where = And(predicate, close_pred)

        plain = Select(
            CrossProduct(SeqScan(rel, "a"), SeqScan(rel, "b")), where
        ).execute()
        indexed = Select(
            IndexFilteredProduct(
                SeqScan(rel, "a"), SeqScan(rel, "b"), "a.flight", "b.flight",
                slack=500.0,
            ),
            where,
        ).execute()

        def key(rows):
            return sorted((r["a.id"].value, r["b.id"].value) for r in rows)

        assert key(plain) == key(indexed)


class TestStormPipeline:
    def test_storm_inside_and_storage(self):
        storms = StormGenerator(seed=3).storms(2, phases=4)
        trips = RoadNetwork(rows=5, cols=5, seed=3, spacing=2000.0).trips(3)
        hits = 0
        for storm in storms:
            for trip in trips:
                mb = inside(trip, storm)
                for u in mb.units:
                    assert u.interval.length >= 0
                hits += len(mb.when(True))
        # Deterministic workload: the count is stable across runs.
        stored = pack_value("mregion", storms[0])
        assert unpack_value(StoredValue.from_bytes(stored.to_bytes())) == storms[0]

    def test_storm_area_perimeter_consistency(self):
        storm = StormGenerator(seed=9).storm(phases=3)
        area = storm.area()
        for iv in storm.deftime():
            t = iv.midpoint()
            direct = storm.value_at(t).area()
            lifted = area.value_at(t).value
            assert lifted == pytest.approx(direct, rel=1e-6)


class TestClosestApproachConsistency:
    def test_min_distance_matches_dense_sampling(self):
        a = random_flights(1, legs=4, seed=100)[0]
        b = random_flights(1, legs=4, seed=101)[0]
        d = mpoint_distance(a, b)
        if not d.units:
            pytest.skip("flights never co-exist in time")
        t_min, d_min = closest_approach(a, b)
        # Dense sampling can only find distances >= the true minimum.
        lo, hi = d.start_time(), d.end_time()
        sampled = min(
            d.value_at(lo + (hi - lo) * k / 400.0).value for k in range(401)
            if d.value_at(lo + (hi - lo) * k / 400.0) is not None
        )
        assert d_min <= sampled + 1e-6
        assert d.value_at(t_min).value == pytest.approx(d_min, abs=1e-6)


class TestUnitIndexConsistency:
    def test_index_filter_never_loses_true_hits(self):
        flights = random_flights(20, legs=4, seed=55)
        idx = MovingObjectIndex()
        for i, f in enumerate(flights):
            idx.add(i, f)
        window = Rect(1000, 1000, 6000, 6000)
        t0, t1 = 100.0, 800.0
        candidates = idx.candidates_window(window, t0, t1)
        for i, f in enumerate(flights):
            truly = False
            for k in range(201):
                t = t0 + (t1 - t0) * k / 200.0
                p = f.value_at(t)
                if p is not None and window.contains_point(p.vec):
                    truly = True
                    break
            if truly:
                assert i in candidates
