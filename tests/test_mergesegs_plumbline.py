"""Tests for merge-segs, parity fragments, splitting, and the plumbline."""

import pytest

from repro.geometry.mergesegs import merge_segs, parity_fragments
from repro.geometry.plumbline import crossings_above, point_in_segset
from repro.geometry.segment import make_seg, seg_length
from repro.geometry.splitting import split_at_intersections, split_segment


def total_length(segs):
    return sum(seg_length(s) for s in segs)


class TestMergeSegs:
    def test_disjoint_pass_through(self):
        segs = [make_seg((0, 0), (1, 0)), make_seg((0, 1), (1, 1))]
        assert sorted(merge_segs(segs)) == sorted(segs)

    def test_overlapping_merge(self):
        got = merge_segs([make_seg((0, 0), (2, 0)), make_seg((1, 0), (3, 0))])
        assert got == [make_seg((0, 0), (3, 0))]

    def test_adjacent_merge(self):
        got = merge_segs([make_seg((0, 0), (1, 0)), make_seg((1, 0), (2, 0))])
        assert got == [make_seg((0, 0), (2, 0))]

    def test_contained_merge(self):
        got = merge_segs([make_seg((0, 0), (4, 0)), make_seg((1, 0), (2, 0))])
        assert got == [make_seg((0, 0), (4, 0))]

    def test_collinear_with_gap_stays_split(self):
        segs = [make_seg((0, 0), (1, 0)), make_seg((2, 0), (3, 0))]
        assert merge_segs(segs) == sorted(segs)

    def test_diagonal_merge(self):
        got = merge_segs([make_seg((0, 0), (2, 2)), make_seg((1, 1), (3, 3))])
        assert len(got) == 1
        assert total_length(got) == pytest.approx(3 * 2**0.5)

    def test_duplicates_merge(self):
        s = make_seg((0, 0), (1, 1))
        assert merge_segs([s, s]) == [s]

    def test_many_pieces_one_carrier(self):
        segs = [make_seg((float(i), 0), (float(i) + 1.5, 0)) for i in range(5)]
        got = merge_segs(segs)
        assert got == [make_seg((0, 0), (5.5, 0))]


class TestParityFragments:
    def test_single_segment_passes(self):
        s = make_seg((0, 0), (1, 0))
        assert parity_fragments([s]) == [s]

    def test_double_coverage_cancels(self):
        s = make_seg((0, 0), (1, 0))
        assert parity_fragments([s, s]) == []

    def test_partial_overlap_keeps_odd_parts(self):
        # (0..2) and (1..3): (1..2) covered twice drops, rest stays.
        got = parity_fragments(
            [make_seg((0, 0), (2, 0)), make_seg((1, 0), (3, 0))]
        )
        assert got == [make_seg((0, 0), (1, 0)), make_seg((2, 0), (3, 0))]

    def test_paper_example(self):
        # Points ordered <p, r, q, s>: fragments (p,r),(r,q),(q,s); (r,q)
        # has even coverage and is removed.
        pq = make_seg((0, 0), (2, 0))
        rs = make_seg((1, 0), (3, 0))
        got = parity_fragments([pq, rs])
        assert total_length(got) == pytest.approx(2.0)

    def test_triple_coverage_is_odd(self):
        s = make_seg((0, 0), (1, 0))
        assert parity_fragments([s, s, s]) == [s]


class TestSplitting:
    def test_split_segment_at_interior_points(self):
        s = make_seg((0, 0), (4, 0))
        pieces = split_segment(s, [(1, 0), (3, 0)])
        assert len(pieces) == 3
        assert total_length(pieces) == pytest.approx(4.0)

    def test_split_ignores_out_of_range_cuts(self):
        s = make_seg((0, 0), (4, 0))
        assert split_segment(s, [(5, 0), (0, 1)]) == [s]

    def test_split_at_crossing(self):
        a = [make_seg((0, 0), (2, 2))]
        b = [make_seg((0, 2), (2, 0))]
        ra, rb = split_at_intersections(a, b)
        assert len(ra) == 2 and len(rb) == 2
        assert total_length(ra) == pytest.approx(total_length(a))

    def test_split_preserves_length(self):
        a = [make_seg((0, 0), (10, 0)), make_seg((0, 5), (10, 5))]
        b = [make_seg((5, -1), (5, 6))]
        ra, rb = split_at_intersections(a, b)
        assert total_length(ra) == pytest.approx(total_length(a))
        assert total_length(rb) == pytest.approx(total_length(b))

    def test_collinear_overlap_split(self):
        a = [make_seg((0, 0), (2, 0))]
        b = [make_seg((1, 0), (3, 0))]
        ra, rb = split_at_intersections(a, b)
        assert make_seg((1, 0), (2, 0)) in ra
        assert make_seg((1, 0), (2, 0)) in rb


SQUARE = [
    make_seg((0, 0), (4, 0)),
    make_seg((4, 0), (4, 4)),
    make_seg((0, 4), (4, 4)),
    make_seg((0, 0), (0, 4)),
]


class TestPlumbline:
    def test_inside(self):
        assert point_in_segset((2, 2), SQUARE)

    def test_outside(self):
        assert not point_in_segset((5, 2), SQUARE)
        assert not point_in_segset((2, 5), SQUARE)

    def test_boundary_counts_by_default(self):
        assert point_in_segset((0, 2), SQUARE)
        assert point_in_segset((2, 0), SQUARE)

    def test_boundary_excluded_when_asked(self):
        assert not point_in_segset((0, 2), SQUARE, boundary_counts=False)

    def test_vertex_point(self):
        assert point_in_segset((0, 0), SQUARE)

    def test_crossings_count(self):
        assert crossings_above((2, 2), SQUARE) == 1
        assert crossings_above((2, -1), SQUARE) == 2
        assert crossings_above((5, 2), SQUARE) == 0

    def test_ray_through_vertex_counts_once(self):
        # Diamond: ray from below its bottom vertex crosses the boundary an
        # even number of times; parity must still classify correctly.
        diamond = [
            make_seg((0, 0), (2, 2)),
            make_seg((2, 2), (4, 0)),
            make_seg((2, -2), (4, 0)),
            make_seg((0, 0), (2, -2)),
        ]
        assert point_in_segset((2, 0), diamond)
        assert not point_in_segset((2, 3), diamond)
