"""Round-trip tests for every storage codec (Section 4 layouts)."""

import pytest

from repro.base.instant import Instant
from repro.base.values import BoolVal, IntVal, RealVal, StringVal
from repro.errors import StorageError
from repro.ranges.interval import Interval, closed
from repro.ranges.intime import Intime
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.region import Region
from repro.storage.records import (
    StoredValue,
    codec_for,
    pack_value,
    unpack_value,
)
from repro.temporal.mapping import (
    MovingBool,
    MovingInt,
    MovingLine,
    MovingPoint,
    MovingPoints,
    MovingReal,
    MovingRegion,
    MovingString,
)
from repro.temporal.mseg import MPoint, MSeg
from repro.temporal.uconst import ConstUnit
from repro.temporal.uline import ULine
from repro.temporal.upoints import UPoints
from repro.temporal.ureal import UReal
from repro.temporal.uregion import URegion


def roundtrip(type_name, value):
    stored = pack_value(type_name, value)
    # Also exercise the byte-level flattening.
    back = StoredValue.from_bytes(stored.to_bytes())
    return unpack_value(back)


class TestBaseCodecs:
    @pytest.mark.parametrize(
        "type_name,value",
        [
            ("int", IntVal(42)),
            ("int", IntVal(-1)),
            ("int", IntVal()),
            ("real", RealVal(3.25)),
            ("real", RealVal()),
            ("bool", BoolVal(True)),
            ("bool", BoolVal()),
            ("string", StringVal("hello")),
            ("string", StringVal("")),
            ("string", StringVal()),
            ("instant", Instant(12.5)),
            ("instant", Instant()),
            ("point", Point(1.5, -2.5)),
            ("point", Point()),
        ],
    )
    def test_roundtrip(self, type_name, value):
        assert roundtrip(type_name, value) == value

    def test_unicode_string(self):
        assert roundtrip("string", StringVal("héllo")) == StringVal("héllo")

    def test_unknown_type_rejected(self):
        with pytest.raises(StorageError):
            codec_for("nonsense")


class TestSpatialCodecs:
    def test_points(self):
        v = Points([(1, 2), (3, 4), (0, 0)])
        assert roundtrip("points", v) == v

    def test_points_empty(self):
        assert roundtrip("points", Points()) == Points()

    def test_line(self):
        v = Line.polyline([(0, 0), (2, 2), (4, 0)])
        assert roundtrip("line", v) == v

    def test_line_empty(self):
        assert roundtrip("line", Line()) == Line()

    def test_line_root_carries_length(self):
        v = Line.polyline([(0, 0), (3, 4)])
        stored = pack_value("line", v)
        import struct

        count, _x0, _y0, _x1, _y1, length = struct.unpack("<Iddddd", stored.root)
        assert count == 1 and length == pytest.approx(5.0)

    def test_region_simple(self):
        v = Region.box(0, 0, 4, 4)
        assert roundtrip("region", v) == v

    def test_region_with_holes(self):
        v = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)], [(6, 6), (8, 6), (8, 8), (6, 8)]],
        )
        back = roundtrip("region", v)
        assert back == v
        assert len(back.faces[0].holes) == 2

    def test_region_multi_face(self):
        from repro.spatial.region import Face, Cycle

        v = Region(
            [
                Face(Cycle.from_vertices([(0, 0), (2, 0), (2, 2), (0, 2)])),
                Face(Cycle.from_vertices([(5, 5), (7, 5), (7, 7), (5, 7)])),
            ]
        )
        assert roundtrip("region", v) == v

    def test_region_empty(self):
        assert roundtrip("region", Region()) == Region()

    def test_region_halfsegment_array_ordered(self):
        v = Region.box(0, 0, 4, 4)
        stored = pack_value("region", v)
        hs = list(stored.arrays[0])
        doms = [(r[0], r[1]) if r[4] else (r[2], r[3]) for r in hs]
        assert doms == sorted(doms)


class TestRangeIntimeCodecs:
    def test_rangeset(self):
        v = RangeSet([closed(0.0, 1.0), Interval(3.0, 4.0, False, True)])
        assert roundtrip("range", v) == v

    def test_rangeset_empty(self):
        assert roundtrip("range", RangeSet()) == RangeSet()

    def test_intime_real(self):
        v = Intime(5.0, RealVal(2.5))
        assert roundtrip("intime(real)", v) == v

    def test_intime_point(self):
        v = Intime(5.0, Point(1, 2))
        assert roundtrip("intime(point)", v) == v


class TestMappingCodecs:
    def test_mbool(self):
        v = MovingBool.piecewise(
            [(closed(0.0, 1.0), True), (Interval(1.0, 2.0, False, True), False)]
        )
        assert roundtrip("mbool", v) == v

    def test_mint(self):
        v = MovingInt(
            [
                ConstUnit(closed(0.0, 1.0), IntVal(1)),
                ConstUnit(Interval(1.0, 2.0, False, True), IntVal(2)),
            ]
        )
        assert roundtrip("mint", v) == v

    def test_mstring(self):
        v = MovingString([ConstUnit(closed(0.0, 1.0), StringVal("go"))])
        assert roundtrip("mstring", v) == v

    def test_mreal(self):
        v = MovingReal(
            [
                UReal(closed(0.0, 1.0), 1, 2, 3),
                UReal(Interval(1.0, 2.0, False, True), 0, 0, 4, r=True),
            ]
        )
        assert roundtrip("mreal", v) == v

    def test_mpoint(self):
        v = MovingPoint.from_waypoints([(0, (0, 0)), (5, (3, 4)), (9, (0, 0))])
        assert roundtrip("mpoint", v) == v

    def test_mpoints_shared_subarray(self):
        v = MovingPoints(
            [
                UPoints(closed(0.0, 1.0), [MPoint(0, 1, 0, 0), MPoint(5, 0, 5, 0)]),
                UPoints(
                    Interval(1.0, 2.0, False, True),
                    [MPoint(1, 0, 0, 0)],
                ),
            ]
        )
        stored = pack_value("mpoints", v)
        # One shared element array holding all three MPoints (Figure 7).
        assert len(stored.arrays) == 2
        assert len(stored.arrays[1]) == 3
        assert unpack_value(stored) == v

    def test_mline(self):
        u = ULine.between_lines(
            0.0, Line([((0, 0), (1, 0))]), 5.0, Line([((2, 2), (3, 2))])
        )
        v = MovingLine([u])
        assert roundtrip("mline", v) == v

    def test_mregion(self):
        u = URegion.between_regions(
            0.0, Region.box(0, 0, 2, 2), 5.0, Region.box(4, 0, 6, 2)
        )
        v = MovingRegion([u])
        assert roundtrip("mregion", v) == v

    def test_mregion_with_holes(self):
        r0 = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        u = URegion.stationary(closed(0.0, 1.0), r0)
        v = MovingRegion([u])
        back = roundtrip("mregion", v)
        assert back == v
        assert len(back.units[0].faces[0].holes) == 1

    def test_table3_aliases(self):
        v = MovingBool.piecewise([(closed(0.0, 1.0), True)])
        stored = pack_value("mapping(const(bool))", v)
        assert stored.type_name == "mbool"
        assert unpack_value(stored) == v

    def test_empty_mappings(self):
        for name, cls in [
            ("mbool", MovingBool),
            ("mreal", MovingReal),
            ("mpoint", MovingPoint),
            ("mregion", MovingRegion),
        ]:
            assert roundtrip(name, cls([])) == cls([])
