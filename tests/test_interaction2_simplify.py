"""Tests for mregion×mregion intersects, mpoint intersection, simplification."""

import math
import random

import pytest

from repro.errors import InvalidValue
from repro.ranges.interval import closed
from repro.ranges.rangeset import RangeSet
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.temporal.uregion import URegion
from repro.ops.interaction2 import (
    mpoint_intersection,
    mregion_intersects,
    uregion_uregion_intersects,
)
from repro.ops.simplify import compression_ratio, simplification_error, simplify


def translating(t0, t1, x0, x1, y=0.0, size=2.0):
    return URegion.between_regions(
        t0,
        Region.box(x0, y, x0 + size, y + size),
        t1,
        Region.box(x1, y, x1 + size, y + size),
    )


class TestMRegionIntersects:
    def test_pass_through(self):
        # A moves right through stationary B.
        a = MovingRegion([translating(0.0, 10.0, -10.0, 10.0)])
        b = MovingRegion([URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 2, 2))])
        mb = mregion_intersects(a, b)
        on = mb.when(True)
        assert len(on) == 1
        # A spans [x, x+2] with x(t) = -10 + 2t; contact while x ∈ [-2, 2].
        assert on.intervals[0].s == pytest.approx(4.0, abs=0.01)
        assert on.intervals[0].e == pytest.approx(6.0, abs=0.01)

    def test_never_touching(self):
        a = MovingRegion([translating(0.0, 10.0, 0.0, 5.0, y=0.0)])
        b = MovingRegion([translating(0.0, 10.0, 0.0, 5.0, y=100.0)])
        mb = mregion_intersects(a, b)
        assert not mb.when(True)
        assert mb.when(False).total_length() == pytest.approx(10.0)

    def test_containment_counts(self):
        outer = MovingRegion(
            [URegion.stationary(closed(0.0, 10.0), Region.box(-10, -10, 10, 10))]
        )
        inner = MovingRegion([translating(0.0, 10.0, -2.0, 2.0)])
        mb = mregion_intersects(outer, inner)
        assert mb.when(True).total_length() == pytest.approx(10.0)

    def test_disjoint_time(self):
        a = MovingRegion([translating(0.0, 1.0, 0.0, 1.0)])
        b = MovingRegion([translating(5.0, 6.0, 0.0, 1.0)])
        assert not mregion_intersects(a, b)

    def test_unit_level_touch_instant_is_true(self):
        # Boxes that touch exactly at one instant: intersects true there.
        ua = translating(0.0, 10.0, -12.0, 8.0)  # right edge at -10+2t... compute below
        ub = URegion.stationary(closed(0.0, 10.0), Region.box(0, 0, 2, 2))
        units = uregion_uregion_intersects(ua, ub)
        on = [u for u in units if bool(u.value.value)]
        assert on  # there is a true stretch (or instant)


class TestMPointIntersection:
    def test_transversal_crossing(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 10))])
        b = MovingPoint.from_waypoints([(0, (10, 0)), (10, (0, 10))])
        got = mpoint_intersection(a, b)
        assert got.deftime() == RangeSet([closed(5.0, 5.0)])
        assert got.value_at(5.0).vec == pytest.approx((5.0, 5.0))

    def test_identical_tracks(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        got = mpoint_intersection(a, b)
        assert got.deftime().total_length() == pytest.approx(10.0)

    def test_parallel_tracks_empty(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0))])
        b = MovingPoint.from_waypoints([(0, (0, 1)), (10, (10, 1))])
        assert not mpoint_intersection(a, b)

    def test_partial_identity(self):
        a = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0)), (20, (10, 10))])
        b = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0)), (20, (20, 0))])
        got = mpoint_intersection(a, b)
        assert got.deftime().total_length() == pytest.approx(10.0)


class TestSimplify:
    def noisy_track(self, n=100, seed=5):
        rng = random.Random(seed)
        waypoints = []
        for k in range(n + 1):
            t = float(k)
            x = k * 10.0 + rng.uniform(-0.5, 0.5)
            y = rng.uniform(-0.5, 0.5)
            waypoints.append((t, (x, y)))
        return MovingPoint.from_waypoints(waypoints)

    def test_error_bound_respected(self):
        mp = self.noisy_track()
        for eps in (0.5, 2.0, 10.0):
            slim = simplify(mp, eps)
            assert simplification_error(mp, slim) <= eps + 1e-9

    def test_compression_grows_with_epsilon(self):
        mp = self.noisy_track()
        r1 = compression_ratio(mp, simplify(mp, 0.1))
        r2 = compression_ratio(mp, simplify(mp, 2.0))
        assert r2 >= r1 >= 1.0
        assert r2 > 5.0  # the noise is sub-unit: a loose bound compresses hard

    def test_time_span_preserved(self):
        mp = self.noisy_track()
        slim = simplify(mp, 1.0)
        assert slim.start_time() == mp.start_time()
        assert slim.end_time() == mp.end_time()

    def test_straight_line_collapses_to_one_unit(self):
        mp = MovingPoint.from_waypoints([(float(k), (k * 5.0, 0.0)) for k in range(20)])
        slim = simplify(mp, 1e-9)
        assert len(slim) == 1

    def test_zero_epsilon_keeps_shape(self):
        mp = self.noisy_track(n=20)
        slim = simplify(mp, 0.0)
        assert simplification_error(mp, slim) <= 1e-12

    def test_negative_epsilon_rejected(self):
        with pytest.raises(InvalidValue):
            simplify(self.noisy_track(n=5), -1.0)

    def test_gap_rejected(self):
        from repro.temporal.upoint import UPoint

        gappy = MovingPoint(
            [
                UPoint.between(0.0, (0, 0), 1.0, (1, 0)),
                UPoint.between(5.0, (5, 0), 6.0, (6, 0)),
            ]
        )
        with pytest.raises(InvalidValue):
            simplify(gappy, 1.0)
