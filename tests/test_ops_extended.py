"""Tests for the extended operations: pointwise min/max, static-target
distances, SQL aggregation/ordering, and the operation signature table."""

import math

import pytest

from repro.db import Database
from repro.db.expressions import function_names
from repro.errors import QueryError
from repro.ranges.interval import Interval, closed
from repro.spatial.line import Line
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingReal
from repro.temporal.ureal import UReal
from repro.ops.distance import mpoint_line_distance, mpoint_region_distance
from repro.ops.lifted import mreal_max, mreal_min
from repro.ops.signatures import OPERATIONS, sql_exposed, well_formed


class TestPointwiseMinMax:
    def test_crossing_lines(self):
        iv = closed(0.0, 10.0)
        a = MovingReal([UReal(iv, 0, 1, 0)])  # t
        b = MovingReal([UReal(iv, 0, -1, 10)])  # 10 - t
        mn, mx = mreal_min(a, b), mreal_max(a, b)
        for t in (0.0, 2.0, 5.0, 8.0, 10.0):
            assert mn.value_at(t).value == pytest.approx(min(t, 10 - t))
            assert mx.value_at(t).value == pytest.approx(max(t, 10 - t))

    def test_sqrt_forms(self):
        iv = closed(0.0, 10.0)
        a = MovingReal([UReal(iv, 1, -10, 26, r=True)])  # sqrt((t-5)²+1)
        b = MovingReal([UReal(iv, 0, 0, 9, r=True)])  # 3
        mn = mreal_min(a, b)
        assert mn.value_at(5.0).value == pytest.approx(1.0)
        assert mn.value_at(0.0).value == pytest.approx(3.0)

    def test_min_respects_deftime(self):
        a = MovingReal([UReal(closed(0.0, 4.0), 0, 0, 1)])
        b = MovingReal([UReal(closed(2.0, 8.0), 0, 0, 2)])
        mn = mreal_min(a, b)
        assert mn.deftime().minimum == 2.0
        assert mn.deftime().maximum == 4.0

    def test_min_max_complement(self):
        iv = closed(0.0, 6.0)
        a = MovingReal([UReal(iv, 1, -6, 8)])
        b = MovingReal([UReal(iv, 0, 0, 2)])
        mn, mx = mreal_min(a, b), mreal_max(a, b)
        for t in (0.0, 1.5, 3.0, 4.5, 6.0):
            total = mn.value_at(t).value + mx.value_at(t).value
            expected = a.value_at(t).value + b.value_at(t).value
            assert total == pytest.approx(expected)


class TestStaticTargetDistance:
    def test_line_distance_matches_pointwise(self):
        mp = MovingPoint.from_waypoints([(0, (-5, 3)), (10, (15, 3))])
        line = Line([((0, 0), (4, 0)), ((10, -2), (10, 2))])
        d = mpoint_line_distance(mp, line)

        def expected(px, py):
            best = math.inf
            for (ax, ay), (bx, by) in line.segments:
                ux, uy = bx - ax, by - ay
                lam = ((px - ax) * ux + (py - ay) * uy) / (ux * ux + uy * uy)
                lam = min(max(lam, 0.0), 1.0)
                best = min(best, math.hypot(px - ax - lam * ux, py - ay - lam * uy))
            return best

        for k in range(21):
            t = k / 2.0
            p = mp.value_at(t)
            assert d.value_at(t).value == pytest.approx(expected(p.x, p.y), abs=1e-8)

    def test_region_distance_zero_inside(self):
        mp = MovingPoint.from_waypoints([(0, (-5, 2)), (10, (15, 2))])
        reg = Region.box(0, 0, 4, 4)
        d = mpoint_region_distance(mp, reg)
        assert d.value_at(3.0).value == pytest.approx(0.0)  # inside
        assert d.value_at(0.0).value == pytest.approx(5.0)
        assert d.value_at(10.0).value == pytest.approx(11.0)

    def test_region_distance_continuous_at_boundary(self):
        mp = MovingPoint.from_waypoints([(0, (-5, 2)), (10, (15, 2))])
        reg = Region.box(0, 0, 4, 4)
        d = mpoint_region_distance(mp, reg)
        enter_t = 2.5  # x(t) = -5 + 2t = 0
        assert d.value_at(enter_t - 1e-6).value == pytest.approx(0.0, abs=1e-4)

    def test_empty_inputs(self):
        assert not mpoint_line_distance(MovingPoint([]), Line())
        assert not mpoint_region_distance(MovingPoint([]), Region())


@pytest.fixture
def stats_db():
    db = Database()
    rel = db.create_relation(
        "planes", [("airline", "string"), ("id", "string"), ("flight", "mpoint")]
    )
    rel.insert(["LH", "A", MovingPoint.from_waypoints([(0, (0, 0)), (10, (600, 0))])])
    rel.insert(["LH", "B", MovingPoint.from_waypoints([(0, (0, 0)), (10, (300, 0))])])
    rel.insert(["AF", "C", MovingPoint.from_waypoints([(0, (0, 0)), (10, (100, 0))])])
    return db


class TestSQLAggregation:
    def test_group_by_count_avg(self, stats_db):
        rows = stats_db.query(
            "SELECT airline, count(*) AS n, avg(length(trajectory(flight))) AS m "
            "FROM planes GROUP BY airline ORDER BY airline"
        )
        assert [(r["airline"], r["n"], r["m"]) for r in rows] == [
            ("AF", 1, 100.0),
            ("LH", 2, 450.0),
        ]

    def test_global_aggregates(self, stats_db):
        rows = stats_db.query(
            "SELECT count(*) AS n, max(length(trajectory(flight))) AS longest "
            "FROM planes"
        )
        assert rows == [{"n": 3, "longest": 600.0}]

    def test_sum_min(self, stats_db):
        rows = stats_db.query(
            "SELECT sum(length(trajectory(flight))) AS s, "
            "min(length(trajectory(flight))) AS lo FROM planes"
        )
        assert rows[0]["s"] == pytest.approx(1000.0)
        assert rows[0]["lo"] == pytest.approx(100.0)

    def test_order_by_expression_desc(self, stats_db):
        rows = stats_db.query(
            "SELECT id FROM planes ORDER BY length(trajectory(flight)) DESC"
        )
        assert [r["id"].value for r in rows] == ["A", "B", "C"]

    def test_order_by_multiple_keys(self, stats_db):
        rows = stats_db.query(
            "SELECT airline, id FROM planes ORDER BY airline ASC, id DESC"
        )
        assert [(r["airline"].value, r["id"].value) for r in rows] == [
            ("AF", "C"), ("LH", "B"), ("LH", "A"),
        ]

    def test_nonaggregate_output_must_be_grouped(self, stats_db):
        with pytest.raises(QueryError):
            stats_db.query("SELECT id, count(*) AS n FROM planes GROUP BY airline")

    def test_aggregate_without_group_rejects_plain_column(self, stats_db):
        with pytest.raises(QueryError):
            stats_db.query("SELECT id, count(*) AS n FROM planes")

    def test_integral_in_sql(self, stats_db):
        rows = stats_db.query(
            "SELECT id, integral(speed(flight)) AS travelled FROM planes "
            "WHERE id = 'A'"
        )
        assert rows[0]["travelled"] == pytest.approx(600.0)


class TestSignatureTable:
    def test_all_signatures_well_formed(self):
        assert well_formed() == []

    def test_sql_exposed_functions_registered(self):
        available = set(function_names())
        for op in sql_exposed():
            assert op.sql_name in available, f"{op.sql_name} missing from registry"

    def test_section2_table_present(self):
        # The exact six operations of the paper's Section-2 table.
        names = {(op.name, op.args, op.result) for op in OPERATIONS}
        assert ("trajectory", ("mapping(upoint)",), "line") in names
        assert ("length", ("line",), "real") in names
        assert (
            "distance",
            ("mapping(upoint)", "mapping(upoint)"),
            "mapping(ureal)",
        ) in names
        assert ("atmin", ("mapping(ureal)",), "mapping(ureal)") in names
        assert ("initial", ("mapping(ureal)",), "intime(real)") in names
        assert ("val", ("intime(real)",), "real") in names
