"""Regression tests for the concurrency findings of the MOD007/MOD008
triage (PR 8).

Each test pins one fixed bug:

* ``FleetExecutor._latencies`` was touched with no lock — the
  percentile read and the append were only safe by GIL accident
  (single C calls over float elements), an implementation detail the
  code must not lean on.
* ``QueryServer.stop`` called ``wal.sync()`` (a blocking fsync barrier)
  directly on the event loop.
* ``_write`` pushed whole responses into the transport buffer without
  ever awaiting ``writer.drain()`` — no backpressure, so a slow reader
  let the per-session buffer grow without bound.
* ``pool.get_pool`` read/wrote the module-global pool with no lock —
  two ``asyncio.to_thread`` workers racing it could each fork a pool
  and leak the loser's worker processes.
"""

import socket
import threading

import pytest

from repro.server.executor import FleetExecutor
from repro.server.session import _WRITE_CHUNK, _write, serve_in_thread
from repro.storage.wal import Wal
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint


def _fleet_members(n):
    return [
        MovingPoint([
            UPoint.between(0.0, (float(i), 0.0), 10.0, (float(i), 10.0))
        ])
        for i in range(n)
    ]


# -- executor: latency window under its micro-lock -------------------------


class TestLatencyThreadSafety:
    def test_percentiles_race_append(self):
        """Concurrent record_latency + latency_percentiles never raises.

        Before the fix ``latency_percentiles`` ran
        ``sorted(self._latencies)`` while sessions appended from other
        threads with no lock — safe on today's GIL build only because
        both happen to be single C calls over float elements.  The test
        pins the *contract* (concurrent use is supported) rather than
        the implementation accident.
        """
        ex = FleetExecutor()
        errors = []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    ex.record_latency(1.0)
            except BaseException as exc:  # pragma: no cover - bug path
                errors.append(exc)

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        for t in writers:
            t.start()
        try:
            for _ in range(300):
                p50, p99 = ex.latency_percentiles()
                assert p50 >= 0.0 and p99 >= 0.0
        finally:
            stop.set()
            for t in writers:
                t.join()
        assert errors == []


# -- server: wal.sync off the event loop -----------------------------------


class TestWalSyncOffLoop:
    def test_stop_syncs_on_a_worker_thread(self, tmp_path):
        """Every wal.sync() during serve/stop runs off the loop thread.

        Before the fix ``QueryServer.stop`` called ``self._wal.sync()``
        inline in the coroutine — a blocking fsync on the event loop.
        """
        wal = Wal(tmp_path / "server.wal")
        sync_threads = []
        real_sync = wal.sync

        def recording_sync():
            sync_threads.append(threading.current_thread())
            return real_sync()

        wal.sync = recording_sync
        ex = FleetExecutor()
        ex.register_fleet("f", _fleet_members(1))
        running = serve_in_thread(ex, wal=wal)
        try:
            from repro.server.client import ServerClient

            with ServerClient("127.0.0.1", running.port) as client:
                client.ingest("f", 0, (10.0, 0.0, 10.0, 11.0, 1.0, 11.0))
        finally:
            running.stop()
        wal.close()
        assert sync_threads, "expected at least one group-commit sync"
        # The loop thread is the server thread; no sync may run there.
        assert all(t is not running._thread for t in sync_threads), (
            "wal.sync() ran on the event-loop thread"
        )


# -- session: backpressure-aware writes ------------------------------------


class _FakeWriter:
    """Records the write/drain interleaving _write produces."""

    def __init__(self):
        self.events = []

    def write(self, data: bytes) -> None:
        self.events.append(("write", data))

    async def drain(self) -> None:
        self.events.append(("drain", None))


class TestWriteBackpressure:
    def test_write_drains_every_chunk(self):
        writer = _FakeWriter()
        lines = [f"ROW {i}" for i in range(int(_WRITE_CHUNK * 2.5))]
        import asyncio

        asyncio.run(_write(writer, lines))
        kinds = [kind for kind, _ in writer.events]
        # write/drain alternate: no unbounded buffering between drains.
        assert kinds == ["write", "drain"] * 3
        payload = b"".join(
            data for kind, data in writer.events if kind == "write"
        )
        assert payload.decode("utf-8").split("\n")[:-1] == lines

    def test_short_response_single_drain(self):
        writer = _FakeWriter()
        import asyncio

        asyncio.run(_write(writer, ["OK", "END"]))
        assert [k for k, _ in writer.events] == ["write", "drain"]

    def test_slow_reader_still_gets_everything(self):
        """A client that stalls mid-response still receives every row.

        The response (thousands of rows) overflows the kernel socket
        buffers, so the session actually parks in ``drain()`` until the
        reader catches up — the bug shape was unbounded buffering; the
        fixed shape is a paused, then resumed, complete response.
        """
        n = 3000
        ex = FleetExecutor()
        ex.register_fleet("f", _fleet_members(n))
        running = serve_in_thread(ex)
        try:
            sock = socket.create_connection(
                ("127.0.0.1", running.port), timeout=30.0
            )
            try:
                sock.sendall(b"SNAPSHOT f 5.0\n")
                # Stall: give the server time to fill every buffer it
                # is (wrongly) willing to fill before we read a byte.
                import time

                time.sleep(0.3)
                chunks = []
                while True:
                    data = sock.recv(65536)
                    assert data, "connection closed mid-response"
                    chunks.append(data)
                    if b"\nEND\n" in b"".join(chunks[-2:]):
                        break
                body = b"".join(chunks).decode("utf-8")
            finally:
                sock.close()
            rows = [ln for ln in body.splitlines() if ln.startswith("ROW ")]
            assert len(rows) == n
            assert body.splitlines()[-1] == "END"
        finally:
            running.stop()


# -- pool: creation race ----------------------------------------------------


class TestPoolCreationRace:
    def test_racing_get_pool_yields_one_pool(self):
        """N racing get_pool() callers all receive the same pool.

        Unlocked, two creators could interleave the None-check and each
        fork a pool; the loser's pool object (and its worker processes)
        leaked with no owner.
        """
        from repro.parallel import pool as poolmod

        poolmod.shutdown()
        barrier = threading.Barrier(6)
        seen = []
        errors = []

        def race():
            try:
                barrier.wait(timeout=10.0)
                seen.append(id(poolmod.get_pool(2)))
            except BaseException as exc:  # pragma: no cover - bug path
                errors.append(exc)

        threads = [threading.Thread(target=race) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            assert errors == []
            assert len(set(seen)) == 1
        finally:
            poolmod.shutdown()
