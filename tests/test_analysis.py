"""Tests for ``repro-lint`` (:mod:`repro.analysis`).

Each rule gets three fixture snippets: one violating, one clean, and one
using the ``# modlint: disable=CODE <why>`` escape hatch.  The fixtures
are written into a miniature ``src/repro`` tree under ``tmp_path`` so
path-scoped rules see realistic relative paths.  A final test runs the
linter over the real ``src/`` tree and requires it to be clean — that is
the acceptance gate the CI step enforces.
"""

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippets(tmp_path, files, select=None):
    """Write ``{relpath: source}`` under tmp_path and lint its src tree."""
    (tmp_path / "src" / "repro").mkdir(parents=True, exist_ok=True)
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(text), encoding="utf-8")
    return lint_paths([tmp_path / "src"], select=select)


def codes(violations):
    return [v.code for v in violations]


class TestMOD001EpsDiscipline:
    def test_raw_float_comparison_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                def f(x, y):
                    return x == y
            """,
        }, select={"MOD001"})
        assert codes(out) == ["MOD001"]
        assert "feq" in out[0].message

    def test_mediated_comparison_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                EPSILON = 1e-9

                def f(x, y):
                    return abs(x - y) <= EPSILON
            """,
        }, select={"MOD001"})
        assert out == []

    def test_helper_call_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                from repro.config import feq

                def f(x, y):
                    return feq(x, y)
            """,
        }, select={"MOD001"})
        assert out == []

    def test_justified_disable_suppresses(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                def f(x, y):
                    return x == y  # modlint: disable=MOD001 canonical ordering, not a tolerance
            """,
        }, select={"MOD001"})
        assert out == []

    def test_unjustified_disable_is_mod000(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                def f(x, y):
                    return x == y  # modlint: disable=MOD001
            """,
        }, select={"MOD001"})
        assert codes(out) == ["MOD000"]

    def test_out_of_scope_module_ignored(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/workloads/snippet.py": """
                def f(x, y):
                    return x == y
            """,
        }, select={"MOD001"})
        assert out == []

    def test_standalone_comment_covers_next_line(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                def f(x, y):
                    # modlint: disable=MOD001 exact sentinel membership
                    return x == y
            """,
        }, select={"MOD001"})
        assert out == []


class TestMOD002UnitHygiene:
    def test_validate_false_outside_owner_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/db/snippet.py": """
                from repro.temporal.mapping import MovingPoint

                def f(units):
                    return MovingPoint(units, validate=False)
            """,
        }, select={"MOD002"})
        assert codes(out) == ["MOD002"]
        assert "validate=False" in out[0].message

    def test_validate_false_inside_owner_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/temporal/snippet.py": """
                from repro.temporal.mapping import MovingPoint

                def f(units):
                    return MovingPoint(units, validate=False)
            """,
        }, select={"MOD002"})
        assert out == []

    def test_private_unit_state_access_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                def f(m):
                    return m._units
            """,
        }, select={"MOD002"})
        assert codes(out) == ["MOD002"]

    def test_justified_disable_suppresses(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/db/snippet.py": """
                from repro.temporal.mapping import MovingPoint

                def f(units):
                    return MovingPoint(units, validate=False)  # modlint: disable=MOD002 units pre-sorted by construction
            """,
        }, select={"MOD002"})
        assert out == []


PARITY_OK = """
    KERNEL_PARITY = {
        "my_kernel": KernelParity(
            scalar="repro.temporal.mapping.Mapping.unit_at",
            test="test_my_kernel_matches_scalar",
        ),
    }

    def KernelParity(scalar, test):
        return (scalar, test)
"""

KERNELS_ONE = """
    def my_kernel(col, t):
        return None
"""


class TestMOD003VectorParity:
    def test_unregistered_kernel_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/kernels.py": KERNELS_ONE,
            "src/repro/vector/parity.py": "KERNEL_PARITY = {}\n",
        }, select={"MOD003"})
        assert codes(out) == ["MOD003"]
        assert "my_kernel" in out[0].message

    def test_registered_kernel_with_test_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/kernels.py": KERNELS_ONE,
            "src/repro/vector/parity.py": PARITY_OK,
            "tests/test_vector_properties.py": """
                def test_my_kernel_matches_scalar():
                    pass
            """,
        }, select={"MOD003"})
        assert out == []

    def test_missing_parity_test_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/kernels.py": KERNELS_ONE,
            "src/repro/vector/parity.py": PARITY_OK,
            "tests/test_vector_properties.py": """
                def test_something_else():
                    pass
            """,
        }, select={"MOD003"})
        assert codes(out) == ["MOD003"]
        assert "test_my_kernel_matches_scalar" in out[0].message

    def test_stale_registry_entry_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/kernels.py": "x = 1\n",
            "src/repro/vector/parity.py": PARITY_OK,
            "tests/test_vector_properties.py": """
                def test_my_kernel_matches_scalar():
                    pass
            """,
        }, select={"MOD003"})
        assert codes(out) == ["MOD003"]
        assert "does not match any public kernel" in out[0].message

    def test_disable_on_kernel_def_suppresses(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/kernels.py": """
                def my_kernel(col, t):  # modlint: disable=MOD003 experimental, parity test pending
                    return None
            """,
            "src/repro/vector/parity.py": "KERNEL_PARITY = {}\n",
        }, select={"MOD003"})
        assert out == []


OBS_REGISTRY = """
    COUNTER_NAMES = frozenset({"mapping.probes"})
    TIMER_NAMES = frozenset({"inside"})
    GAUGE_NAMES = frozenset()
"""


class TestMOD004ObsDiscipline:
    def test_unregistered_counter_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/obs.py": OBS_REGISTRY,
            "src/repro/ops/snippet.py": """
                from repro import obs

                def f():
                    obs.counters.add("mystery.counter")
            """,
        }, select={"MOD004"})
        assert codes(out) == ["MOD004"]
        assert "mystery.counter" in out[0].message

    def test_registered_counter_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/obs.py": OBS_REGISTRY,
            "src/repro/ops/snippet.py": """
                from repro import obs

                def f():
                    obs.counters.add("mapping.probes")
            """,
        }, select={"MOD004"})
        assert out == []

    def test_non_literal_name_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/obs.py": OBS_REGISTRY,
            "src/repro/ops/snippet.py": """
                from repro import obs

                def f(name):
                    obs.counters.add(f"mapping.{name}")
            """,
        }, select={"MOD004"})
        assert codes(out) == ["MOD004"]
        assert "literal" in out[0].message

    def test_scope_derived_counter_name_checked(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/obs.py": OBS_REGISTRY,
            "src/repro/ops/snippet.py": """
                from repro import obs

                def f():
                    with obs.scope("inside") as s:
                        s.add("unit_pairs")
            """,
        }, select={"MOD004"})
        assert codes(out) == ["MOD004"]
        assert "inside.unit_pairs" in out[0].message

    def test_registered_but_never_written_flagged_on_full_run(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/obs.py": OBS_REGISTRY,
            "src/repro/temporal/mapping.py": """
                from repro import obs

                def f():
                    obs.counters.add("mapping.probes")
            """,
            "src/repro/vector/kernels.py": "x = 1\n",
        }, select={"MOD004"})
        assert codes(out) == ["MOD004"]
        assert "`inside` is never" in out[0].message

    def test_justified_disable_suppresses(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/obs.py": OBS_REGISTRY,
            "src/repro/ops/snippet.py": """
                from repro import obs

                def f():
                    obs.counters.add("mystery.counter")  # modlint: disable=MOD004 migration shim, registry lands next PR
            """,
        }, select={"MOD004"})
        assert out == []

    def test_mmap_fallback_call_site_expands_derived_names(self, tmp_path):
        # `_mmap_fallback("stale")` implies both the base downgrade
        # counter and the per-reason one; neither is registered here,
        # so both derived names must be flagged.
        out = lint_snippets(tmp_path, {
            "src/repro/obs.py": OBS_REGISTRY,
            "src/repro/parallel/snippet.py": """
                def f():
                    _mmap_fallback("stale")
            """,
        }, select={"MOD004"})
        assert codes(out) == ["MOD004", "MOD004"]
        flagged = " ".join(v.message for v in out)
        assert "colstore.mmap_fallback`" in flagged
        assert "colstore.mmap_fallback.stale" in flagged

    def test_mmap_fallback_registered_reasons_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/obs.py": """
                COUNTER_NAMES = frozenset({
                    "colstore.mmap_fallback",
                    "colstore.mmap_fallback.stale",
                })
                TIMER_NAMES = frozenset()
                GAUGE_NAMES = frozenset()
            """,
            "src/repro/parallel/snippet.py": """
                def f():
                    _mmap_fallback("stale")
            """,
        }, select={"MOD004"})
        assert out == []


class TestMOD005BackendDispatch:
    def test_raw_backend_compare_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/snippet.py": """
                def f(fleet, backend=None):
                    if backend == "vector":
                        return 1
                    return 2
            """,
        }, select={"MOD005"})
        assert codes(out) == ["MOD005"]
        assert "_resolve" in out[0].message

    def test_missing_scalar_arm_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/snippet.py": """
                def f(fleet, backend=None):
                    if _resolve(backend) == "vector":
                        return 1
            """,
        }, select={"MOD005"})
        assert codes(out) == ["MOD005"]
        assert "no scalar arm" in out[0].message

    def test_unguarded_column_construction_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/snippet.py": """
                def f(fleet, backend=None):
                    if _resolve(backend) == "vector":
                        col = UPointColumn.from_mappings(fleet)
                        return col
                    return 2
            """,
        }, select={"MOD005"})
        assert codes(out) == ["MOD005"]
        assert "from_mappings" in out[0].message

    def test_handler_without_fallback_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/snippet.py": """
                def f(fleet, backend=None):
                    if _resolve(backend) == "vector":
                        try:
                            col = UPointColumn.from_mappings(fleet)
                        except InvalidValue:
                            pass
                        else:
                            return col
                    return 2
            """,
        }, select={"MOD005"})
        assert codes(out) == ["MOD005"]
        assert "_fallback" in out[0].message

    def test_counted_fallback_dispatch_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/snippet.py": """
                def f(fleet, backend=None):
                    if _resolve(backend) == "vector":
                        try:
                            col = UPointColumn.from_mappings(fleet)
                        except InvalidValue:
                            _fallback("upoint_column")
                        else:
                            return col
                    return 2
            """,
        }, select={"MOD005"})
        assert out == []

    def test_justified_disable_suppresses(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/vector/snippet.py": """
                def f(fleet, backend=None):
                    if backend == "vector":  # modlint: disable=MOD005 CLI entry point, backend pre-resolved upstream
                        return 1
                    return 2
            """,
        }, select={"MOD005"})
        assert out == []

    def test_raw_scheme_compare_flagged_in_parallel_package(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/parallel/snippet.py": """
                def attach(name):
                    if name == "mmap":
                        return 1
                    return 2
            """,
        }, select={"MOD005"})
        assert codes(out) == ["MOD005"]
        assert "_scheme_of" in out[0].message

    def test_scheme_compare_outside_parallel_package_ignored(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/storage/snippet.py": """
                def f(name):
                    return name == "mmap"
            """,
        }, select={"MOD005"})
        assert out == []

    def test_resolved_scheme_dispatch_with_fallthrough_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/parallel/snippet.py": """
                def _scheme_of(name):
                    return "mmap" if name.startswith("mmap://") else "shm"

                def attach(name):
                    if _scheme_of(name) == "mmap":
                        return 1
                    return 2
            """,
        }, select={"MOD005"})
        assert out == []

    def test_mmap_arm_without_shm_fallthrough_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/parallel/snippet.py": """
                def attach(name):
                    if _scheme_of(name) == "mmap":
                        return 1
            """,
        }, select={"MOD005"})
        assert codes(out) == ["MOD005"]
        assert "no scalar arm" in out[0].message

    def test_mmap_fallback_counts_as_handler(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/parallel/snippet.py": """
                def dispatch(col, name):
                    if _scheme_of(name) == "mmap":
                        try:
                            return descriptor_of(col)
                        except CorruptColumnError:
                            _mmap_fallback("manifest")
                    return pack(col)
            """,
        }, select={"MOD005"})
        assert out == []


class TestMOD006FailpointDiscipline:
    REGISTRY = """
        FAILPOINT_NAMES = frozenset({
            "pagefile.write_crash",
        })
    """

    def test_unregistered_name_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/faults.py": self.REGISTRY,
            "src/repro/storage/snippet.py": """
                from repro import faults

                def f():
                    faults.fail("pagefile.wrtie_crash")
            """,
        }, select={"MOD006"})
        assert codes(out) == ["MOD006"]
        assert "pagefile.wrtie_crash" in out[0].message

    def test_non_literal_name_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/faults.py": self.REGISTRY,
            "src/repro/storage/snippet.py": """
                from repro import faults

                def f(name):
                    faults.should_fire(name)
            """,
        }, select={"MOD006"})
        assert codes(out) == ["MOD006"]
        assert "literal" in out[0].message

    def test_registered_and_placed_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/faults.py": self.REGISTRY,
            "src/repro/storage/snippet.py": """
                from repro import faults

                def f():
                    faults.fail("pagefile.write_crash")
            """,
        }, select={"MOD006"})
        assert out == []

    def test_never_placed_flagged_on_full_run(self, tmp_path):
        # The never-placed direction only fires when the storage
        # package (anchored by pages.py) is in scope.
        out = lint_snippets(tmp_path, {
            "src/repro/faults.py": self.REGISTRY,
            "src/repro/storage/pages.py": """
                def read_page(n):
                    return b""
            """,
        }, select={"MOD006"})
        assert codes(out) == ["MOD006"]
        assert "never placed" in out[0].message

    def test_partial_run_skips_never_placed(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/faults.py": self.REGISTRY,
        }, select={"MOD006"})
        assert out == []

    def test_justified_disable_suppresses(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/faults.py": self.REGISTRY,
            "src/repro/storage/snippet.py": """
                from repro import faults

                def f():
                    faults.fail("experimental.site")  # modlint: disable=MOD006 staged for the next registry batch
            """,
        }, select={"MOD006"})
        assert out == []


class TestMOD007LockDiscipline:
    def test_unlocked_access_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/executor.py": """
                import threading

                class FleetExecutor:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._fleets = {}

                    def fleet_names(self):
                        return sorted(self._fleets)
            """,
        }, select={"MOD007"})
        assert codes(out) == ["MOD007"]
        assert "with self._lock" in out[0].message

    def test_locked_access_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/executor.py": """
                import threading

                class FleetExecutor:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._fleets = {}

                    def fleet_names(self):
                        with self._lock:
                            return sorted(self._fleets)
            """,
        }, select={"MOD007"})
        assert out == []

    def test_registered_owner_clean(self, tmp_path):
        # _fleet documents "caller holds the lock" and is registered.
        out = lint_snippets(tmp_path, {
            "src/repro/server/executor.py": """
                import threading

                class FleetExecutor:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._fleets = {}

                    def _fleet(self, name):
                        return self._fleets[name]
            """,
        }, select={"MOD007"})
        assert out == []

    def test_loop_confined_sync_method_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/ingest.py": """
                class GroupCommitter:
                    def __init__(self):
                        self._task = None

                    def cancel(self):
                        self._task = None
            """,
        }, select={"MOD007"})
        assert codes(out) == ["MOD007"]
        assert "event-loop confined" in out[0].message

    def test_loop_confined_coroutine_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/ingest.py": """
                class GroupCommitter:
                    def __init__(self):
                        self._task = None

                    async def stop(self):
                        self._task = None
            """,
        }, select={"MOD007"})
        assert out == []

    def test_cross_module_reach_in_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/db/snippet.py": """
                def peek(executor):
                    return executor._fleets
            """,
        }, select={"MOD007"})
        assert codes(out) == ["MOD007"]
        assert "another module" in out[0].message

    def test_suppression_with_reason_accepted(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/executor.py": """
                import threading

                class FleetExecutor:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self._fleets = {}

                    def debug_dump(self):
                        return dict(self._fleets)  # modlint: disable=MOD007 racy-read debug hook, documented unsafe
            """,
        }, select={"MOD007"})
        assert out == []


class TestMOD008AsyncioHygiene:
    def test_blocking_calls_in_coroutine_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/snippet.py": """
                import time

                async def handler(executor, wal, path):
                    time.sleep(0.1)
                    wal.sync()
                    open(path)
                    return executor.stats()
            """,
        }, select={"MOD008"})
        assert codes(out) == ["MOD008"] * 4
        assert any("fsync barrier" in v.message for v in out)
        assert any("executor lock" in v.message for v in out)

    def test_offloaded_and_sync_context_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/snippet.py": """
                import asyncio

                async def handler(executor, wal):
                    # By-reference offload: the blocking call happens on
                    # a worker thread, not the loop.
                    stats = await asyncio.to_thread(executor.stats)
                    await asyncio.to_thread(wal.sync)
                    await asyncio.sleep(0.01)
                    return stats

                def sync_helper(wal):
                    wal.sync()
            """,
        }, select={"MOD008"})
        assert out == []

    def test_outside_server_package_not_in_scope(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/db/snippet.py": """
                import time

                async def handler():
                    time.sleep(0.1)
            """,
        }, select={"MOD008"})
        assert out == []

    def test_suppression_with_reason_accepted(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/snippet.py": """
                import time

                async def handler():
                    time.sleep(0.0)  # modlint: disable=MOD008 zero-sleep yield shim for a legacy test hook
            """,
        }, select={"MOD008"})
        assert out == []


class TestMOD009AtomicPersistence:
    def test_in_place_write_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/storage/snippet.py": """
                def save(path, data):
                    with open(path, "wb") as fh:
                        fh.write(data)
            """,
        }, select={"MOD009"})
        assert codes(out) == ["MOD009"]
        assert "os.replace" in out[0].message

    def test_computed_mode_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/storage/snippet.py": """
                def touch(path, mode):
                    with open(path, mode) as fh:
                        return fh
            """,
        }, select={"MOD009"})
        assert codes(out) == ["MOD009"]

    def test_tmp_rename_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/storage/snippet.py": """
                import os

                def save(path, data):
                    tmp = path + ".tmp"
                    with open(tmp, "wb") as fh:
                        fh.write(data)
                        os.fsync(fh.fileno())
                    os.replace(tmp, path)

                def load(path):
                    with open(path, "rb") as fh:
                        return fh.read()
            """,
        }, select={"MOD009"})
        assert out == []

    def test_journal_owner_clean(self, tmp_path):
        # The WAL constructor's writable open *is* the journal.
        out = lint_snippets(tmp_path, {
            "src/repro/storage/wal.py": """
                import os

                class Wal:
                    def __init__(self, path):
                        mode = "r+b" if os.path.exists(path) else "w+b"
                        self._fh = open(path, mode)
            """,
        }, select={"MOD009"})
        assert out == []

    def test_suppression_with_reason_accepted(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/storage/snippet.py": """
                def append(path, data):
                    # modlint: disable=MOD009 append-only tail write gated by a framed header
                    with open(path, "ab") as fh:
                        fh.write(data)
            """,
        }, select={"MOD009"})
        assert out == []


class TestMOD010ShmForkLifecycle:
    def test_create_without_unlink_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/parallel/snippet.py": """
                from multiprocessing import shared_memory

                def pack(n):
                    return shared_memory.SharedMemory(create=True, size=n)
            """,
        }, select={"MOD010"})
        assert codes(out) == ["MOD010"]
        assert "unlink" in out[0].message

    def test_create_with_unlink_on_error_path_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/storage/snippet.py": """
                from multiprocessing import shared_memory

                def pack(n, fill):
                    shm = shared_memory.SharedMemory(create=True, size=n)
                    try:
                        fill(shm)
                    except BaseException:
                        shm.close()
                        shm.unlink()
                        raise
                    return shm
            """,
        }, select={"MOD010"})
        assert out == []

    def test_create_with_finalizer_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/storage/snippet.py": """
                import weakref
                from multiprocessing import shared_memory

                def pack(n, owner, release):
                    shm = shared_memory.SharedMemory(create=True, size=n)
                    weakref.finalize(owner, release, shm)
                    return shm
            """,
        }, select={"MOD010"})
        assert out == []

    def test_lock_in_parallel_package_flagged(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/parallel/snippet.py": """
                import threading

                LOCK = threading.Lock()
            """,
        }, select={"MOD010"})
        assert codes(out) == ["MOD010"]
        assert "fork" in out[0].message

    def test_lock_outside_parallel_package_clean(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/server/snippet.py": """
                import threading

                LOCK = threading.Lock()
            """,
        }, select={"MOD010"})
        assert out == []

    def test_suppression_with_reason_accepted(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/parallel/snippet.py": """
                import threading

                # modlint: disable=MOD010 parent-side control lock, never held by worker code
                LOCK = threading.Lock()
            """,
        }, select={"MOD010"})
        assert out == []


class TestDynlock:
    """The runtime half: the lock-order witness catches real cycles."""

    def setup_method(self):
        from repro.analysis import dynlock

        dynlock.enable()
        dynlock.reset()

    def teardown_method(self):
        from repro.analysis import dynlock

        dynlock.reset()
        dynlock.disable()

    def test_factory_returns_plain_lock_when_inactive(self, monkeypatch):
        import threading

        from repro.analysis import dynlock

        monkeypatch.delenv("REPRO_DYNLOCK", raising=False)
        dynlock.disable()
        lk = dynlock.rlock("x")
        assert not isinstance(lk, dynlock.TrackedRLock)
        assert isinstance(lk, type(threading.RLock()))

    def test_factory_returns_tracked_lock_when_enabled(self):
        from repro.analysis import dynlock

        assert isinstance(dynlock.rlock("x"), dynlock.TrackedRLock)

    def test_nesting_records_an_edge(self):
        from repro.analysis import dynlock

        a, b = dynlock.rlock("A"), dynlock.rlock("B")
        with a:
            with b:
                pass
        assert ("A", "B") in dynlock.edges()

    def test_reentrancy_is_not_an_edge(self):
        from repro.analysis import dynlock

        a = dynlock.rlock("A")
        with a:
            with a:
                pass
        assert dynlock.edges() == frozenset()

    def test_seeded_inversion_raises_without_deadlock(self):
        import pytest

        from repro.analysis import dynlock

        a, b = dynlock.rlock("A"), dynlock.rlock("B")
        with a:
            with b:
                pass
        with pytest.raises(dynlock.LockOrderError, match="inversion"):
            with b:
                with a:
                    pass
        # The offending acquire never took the lock: A is free again.
        with a:
            pass

    def test_transitive_cycle_detected(self):
        import pytest

        from repro.analysis import dynlock

        a, b, c = dynlock.rlock("A"), dynlock.rlock("B"), dynlock.rlock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(dynlock.LockOrderError):
            with c:
                with a:
                    pass

    def test_acquisitions_counted(self):
        from repro import obs
        from repro.analysis import dynlock

        a = dynlock.rlock("A")
        with obs.capture() as counters:
            with a:
                pass
        assert counters.get("dynlock.acquisitions") == 1

    def test_real_server_locks_witness_their_order(self, monkeypatch):
        # Integration: a snapshot read on a real executor nests the
        # executor lock over the column cache lock — the witness must
        # see that edge and no inverse.
        from repro.analysis import dynlock
        from repro.server.executor import FleetExecutor
        from repro.temporal.mapping import MovingPoint
        from repro.temporal.upoint import UPoint
        from repro.vector import cache as cachemod

        # The module-global cache predates enable(); swap in one whose
        # lock was created with the witness armed.
        monkeypatch.setattr(cachemod, "_CACHE", cachemod.ColumnCache())
        ex = FleetExecutor()
        ex.register_fleet("f", [
            MovingPoint([UPoint.between(0.0, (0.0, 0.0), 1.0, (1.0, 1.0))])
        ])
        ex.snapshot_rows("f", 0.5)
        recorded = dynlock.edges()
        assert ("server.executor", "vector.colcache") in recorded
        assert ("vector.colcache", "server.executor") not in recorded


class TestSuppressionPolicy:
    def test_unknown_code_is_mod000(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                def f(x, y):
                    return x == y  # modlint: disable=MOD999 not a real rule
            """,
        })
        assert "MOD000" in codes(out)
        assert any("unknown rule" in v.message for v in out)

    def test_mod000_cannot_be_silenced(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": """
                def f(x, y):
                    return x == y  # modlint: disable=MOD001,MOD000
            """,
        })
        assert "MOD000" in codes(out)

    def test_syntax_error_reported_not_crashed(self, tmp_path):
        out = lint_snippets(tmp_path, {
            "src/repro/ops/snippet.py": "def f(:\n",
        })
        assert codes(out) == ["MOD000"]
        assert "does not parse" in out[0].message


class TestRealTree:
    def test_full_src_tree_is_clean(self):
        out = lint_paths([REPO_ROOT / "src"])
        assert out == [], "\n".join(v.format() for v in out)

    def test_cli_exit_codes(self, tmp_path, capsys):
        assert main([str(REPO_ROOT / "src")]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out
        (tmp_path / "src" / "repro" / "ops").mkdir(parents=True)
        bad = tmp_path / "src" / "repro" / "ops" / "snippet.py"
        bad.write_text("def f(x, y):\n    return x == y\n", encoding="utf-8")
        assert main([str(tmp_path / "src")]) == 1
        assert "MOD001" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        listing = capsys.readouterr().out
        for code in (
            "MOD001", "MOD002", "MOD003", "MOD004", "MOD005", "MOD006",
            "MOD007", "MOD008", "MOD009", "MOD010",
        ):
            assert code in listing
