"""Tests for the ureal unit type (Section 3.2.5)."""

import math

import pytest

from repro.errors import InvalidValue, NotClosed
from repro.ranges.interval import Interval, closed, interval_at
from repro.temporal.ureal import UReal


class TestConstruction:
    def test_polynomial(self):
        u = UReal(closed(0.0, 10.0), 1, 2, 3)
        assert u.coefficients == (1.0, 2.0, 3.0, False)

    def test_sqrt_form(self):
        u = UReal(closed(0.0, 10.0), 0, 0, 4, r=True)
        assert u.is_sqrt

    def test_sqrt_negative_radicand_rejected(self):
        with pytest.raises(InvalidValue):
            UReal(closed(0.0, 10.0), 0, 0, -1, r=True)

    def test_sqrt_radicand_dips_negative_rejected(self):
        # t² - 1 is negative inside (-1, 1).
        with pytest.raises(InvalidValue):
            UReal(closed(-2.0, 2.0), 1, 0, -1, r=True)

    def test_nonfinite_rejected(self):
        with pytest.raises(InvalidValue):
            UReal(closed(0.0, 1.0), float("nan"), 0, 0)

    def test_constant_helper(self):
        u = UReal.constant(closed(0.0, 5.0), 7.5)
        assert u.eval(3.0) == 7.5

    def test_linear_between(self):
        u = UReal.linear_between(closed(2.0, 4.0), 10.0, 20.0)
        assert u.eval(2.0) == pytest.approx(10.0)
        assert u.eval(3.0) == pytest.approx(15.0)
        assert u.eval(4.0) == pytest.approx(20.0)

    def test_interval_tuple_coercion(self):
        u = UReal((0.0, 1.0), 0, 0, 1)
        assert u.interval == closed(0.0, 1.0)


class TestEvaluation:
    def test_polynomial_eval(self):
        u = UReal(closed(0.0, 10.0), 1, -2, 1)  # (t-1)²
        assert u.eval(3.0) == 4.0

    def test_sqrt_eval(self):
        u = UReal(closed(0.0, 10.0), 0, 0, 9, r=True)
        assert u.eval(5.0) == 3.0

    def test_value_at_inside(self):
        u = UReal(closed(0.0, 10.0), 0, 1, 0)
        assert u.value_at(4.0).value == 4.0

    def test_value_at_outside_is_none(self):
        u = UReal(closed(0.0, 10.0), 0, 1, 0)
        assert u.value_at(11.0) is None

    def test_value_at_open_end_is_none(self):
        u = UReal(Interval(0.0, 10.0, True, False), 0, 1, 0)
        assert u.value_at(10.0) is None
        assert u.value_at(0.0) is not None


class TestAnalysis:
    def test_range_polynomial(self):
        u = UReal(closed(0.0, 4.0), 1, -4, 5)  # vertex at t=2, v=1
        assert u.minimum() == 1.0
        assert u.maximum() == 5.0

    def test_range_sqrt(self):
        u = UReal(closed(0.0, 4.0), 1, -4, 5, r=True)
        assert u.minimum() == 1.0
        assert u.maximum() == pytest.approx(math.sqrt(5.0))

    def test_argmin_vertex(self):
        u = UReal(closed(0.0, 4.0), 1, -4, 5)
        assert u.argmin() == 2.0

    def test_argmin_endpoint(self):
        u = UReal(closed(0.0, 4.0), 0, 1, 0)
        assert u.argmin() == 0.0
        assert u.argmax() == 4.0

    def test_times_at_value(self):
        u = UReal(closed(0.0, 4.0), 1, -4, 5)
        assert u.times_at_value(2.0) == pytest.approx([1.0, 3.0])

    def test_times_at_value_sqrt(self):
        u = UReal(closed(0.0, 4.0), 1, -4, 5, r=True)  # sqrt((t-2)²+1)
        assert u.times_at_value(math.sqrt(2.0)) == pytest.approx([1.0, 3.0])

    def test_times_at_value_constant(self):
        u = UReal.constant(closed(0.0, 4.0), 3.0)
        assert u.times_at_value(3.0) == [0.0, 4.0]


class TestArithmetic:
    def test_plus(self):
        iv = closed(0.0, 1.0)
        got = UReal(iv, 1, 0, 0).plus(UReal(iv, 0, 1, 2))
        assert got.quad == (1.0, 1.0, 2.0)

    def test_plus_needs_same_interval(self):
        with pytest.raises(InvalidValue):
            UReal(closed(0.0, 1.0), 0, 0, 1).plus(UReal(closed(0.0, 2.0), 0, 0, 1))

    def test_sqrt_plus_not_closed(self):
        iv = closed(0.0, 1.0)
        with pytest.raises(NotClosed):
            UReal(iv, 0, 0, 1, r=True).plus(UReal(iv, 0, 0, 1))

    def test_minus(self):
        iv = closed(0.0, 1.0)
        got = UReal(iv, 1, 1, 1).minus(UReal(iv, 1, 0, 0))
        assert got.quad == (0.0, 1.0, 1.0)

    def test_negate_polynomial(self):
        u = -UReal(closed(0.0, 1.0), 1, 2, 3)
        assert u.quad == (-1.0, -2.0, -3.0)

    def test_negate_sqrt_not_closed(self):
        with pytest.raises(NotClosed):
            -UReal(closed(0.0, 1.0), 0, 0, 1, r=True)

    def test_squared_of_linear(self):
        u = UReal(closed(0.0, 1.0), 0, 2, 1).squared()  # (2t+1)²
        assert u.quad == (4.0, 4.0, 1.0)

    def test_squared_of_sqrt_drops_root(self):
        u = UReal(closed(0.0, 1.0), 1, 2, 3, r=True).squared()
        assert u.quad == (1.0, 2.0, 3.0) and not u.is_sqrt

    def test_squared_of_quadratic_not_closed(self):
        with pytest.raises(NotClosed):
            UReal(closed(0.0, 1.0), 1, 0, 0).squared()

    def test_sqrt_of_polynomial(self):
        u = UReal(closed(0.0, 1.0), 0, 0, 4).sqrt()
        assert u.is_sqrt and u.eval(0.5) == 2.0

    def test_nested_sqrt_not_closed(self):
        with pytest.raises(NotClosed):
            UReal(closed(0.0, 1.0), 0, 0, 4, r=True).sqrt()

    def test_derivative_polynomial(self):
        u = UReal(closed(0.0, 1.0), 3, 2, 1).derivative()
        assert u.quad == (0.0, 6.0, 2.0)

    def test_derivative_sqrt_not_closed(self):
        # The paper: derivative cannot be transferred to the discrete model.
        with pytest.raises(NotClosed):
            UReal(closed(0.0, 1.0), 0, 0, 1, r=True).derivative()


class TestCompareTimes:
    def test_poly_poly(self):
        iv = closed(0.0, 5.0)
        a = UReal(iv, 0, 1, 0)  # t
        b = UReal(iv, 0, 0, 2)  # 2
        assert a.compare_times(b) == [2.0]

    def test_sqrt_sqrt(self):
        iv = closed(0.0, 5.0)
        a = UReal(iv, 0, 1, 0, r=True)
        b = UReal(iv, 0, 0, 2, r=True)
        assert a.compare_times(b) == [2.0]

    def test_linear_vs_sqrt(self):
        iv = closed(0.0, 5.0)
        a = UReal(iv, 0, 1, 0)  # t
        b = UReal(iv, 0, 0, 4, r=True)  # 2
        assert a.compare_times(b) == [2.0]

    def test_restriction(self):
        u = UReal(closed(0.0, 10.0), 0, 1, 0)
        r = u.restricted(closed(2.0, 4.0))
        assert r.interval == closed(2.0, 4.0)
        assert r.eval(3.0) == 3.0

    def test_restriction_disjoint_is_none(self):
        u = UReal(closed(0.0, 1.0), 0, 1, 0)
        assert u.restricted(closed(5.0, 6.0)) is None
