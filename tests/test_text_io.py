"""Round-trip tests for the text serialization format."""

import pytest

from repro.base.values import BoolVal, IntVal, StringVal
from repro.io.text import TextFormatError, from_text, to_text
from repro.ranges.interval import Interval, closed
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.region import Region
from repro.temporal.mapping import (
    MovingBool,
    MovingInt,
    MovingLine,
    MovingPoint,
    MovingPoints,
    MovingReal,
    MovingRegion,
    MovingString,
)
from repro.temporal.mseg import MPoint
from repro.temporal.uconst import ConstUnit
from repro.temporal.uline import ULine
from repro.temporal.upoints import UPoints
from repro.temporal.ureal import UReal
from repro.temporal.uregion import URegion


def roundtrip(value):
    text = to_text(value)
    back = from_text(text)
    assert back == value, f"text was: {text}"
    return text


class TestSpatialText:
    def test_point(self):
        assert roundtrip(Point(1.5, -2.0)) == "POINT (1.5 -2)"

    def test_point_empty(self):
        assert roundtrip(Point()) == "POINT EMPTY"

    def test_points(self):
        roundtrip(Points([(0, 0), (1.25, 3)]))
        assert roundtrip(Points()) == "POINTS EMPTY"

    def test_line(self):
        roundtrip(Line.polyline([(0, 0), (1, 1), (2, 0)]))
        assert roundtrip(Line()) == "LINE EMPTY"

    def test_region_with_hole(self):
        roundtrip(
            Region.polygon(
                [(0, 0), (10, 0), (10, 10), (0, 10)],
                holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
            )
        )

    def test_region_multiface(self):
        roundtrip(
            Region(
                list(Region.box(0, 0, 1, 1).faces)
                + list(Region.box(5, 5, 6, 6).faces)
            )
        )

    def test_range(self):
        roundtrip(RangeSet([closed(0.0, 1.0), Interval(2.0, 3.0, False, True)]))
        assert roundtrip(RangeSet()) == "RANGE EMPTY"


class TestTemporalText:
    def test_mbool(self):
        roundtrip(
            MovingBool.piecewise(
                [(closed(0.0, 1.0), True), (Interval(1.0, 2.0, False, True), False)]
            )
        )

    def test_mint(self):
        roundtrip(MovingInt([ConstUnit(closed(0.0, 1.0), IntVal(-3))]))

    def test_mstring_with_escapes(self):
        roundtrip(
            MovingString([ConstUnit(closed(0.0, 1.0), StringVal('say "hi"'))])
        )

    def test_mreal(self):
        roundtrip(
            MovingReal(
                [
                    UReal(closed(0.0, 1.0), 1, -2, 3),
                    UReal(Interval(1.0, 2.0, False, True), 0, 0, 4, r=True),
                ]
            )
        )

    def test_mpoint(self):
        roundtrip(MovingPoint.from_waypoints([(0, (0, 0)), (5, (3, 4)), (8, (3, 0))]))

    def test_mpoints(self):
        roundtrip(
            MovingPoints(
                [UPoints(closed(0.0, 1.0), [MPoint(0, 1, 0, 0), MPoint(5, 0, 5, 0)])]
            )
        )

    def test_mline(self):
        u = ULine.between_lines(
            0.0, Line([((0, 0), (1, 0))]), 5.0, Line([((2, 2), (3, 2))])
        )
        roundtrip(MovingLine([u]))

    def test_mregion(self):
        u = URegion.between_regions(
            0.0, Region.box(0, 0, 2, 2), 5.0, Region.box(4, 1, 6, 3)
        )
        roundtrip(MovingRegion([u]))

    def test_mregion_with_hole(self):
        r = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        roundtrip(MovingRegion([URegion.stationary(closed(0.0, 1.0), r)]))

    def test_empty_mappings(self):
        for cls in (MovingBool, MovingReal, MovingPoint, MovingRegion):
            roundtrip(cls())


class TestErrors:
    def test_unknown_keyword(self):
        with pytest.raises(TextFormatError):
            from_text("WIDGET (1 2)")

    def test_trailing_garbage(self):
        with pytest.raises(TextFormatError):
            from_text("POINT (1 2) extra")

    def test_bad_interval(self):
        with pytest.raises(TextFormatError):
            from_text("MREAL ([0 abc] quad 0 0 1)")

    def test_unsupported_type(self):
        with pytest.raises(TextFormatError):
            to_text(object())

    def test_precision_survives(self):
        mp = MovingPoint.from_waypoints(
            [(0.1, (1 / 3, 2 / 7)), (0.9, (5 / 11, 1 / 13))]
        )
        assert from_text(to_text(mp)) == mp
