"""Tests for exact window queries and the SVG renderer."""

import pytest

from repro.ranges.interval import Interval, closed
from repro.ranges.rangeset import RangeSet
from repro.spatial.bbox import Rect
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.temporal.upoint import UPoint
from repro.temporal.uregion import URegion
from repro.ops.window import (
    WindowQueryEngine,
    mpoint_within_rect_times,
    upoint_within_rect_times,
)
from repro.io.svg import SvgCanvas, render_film_strip, render_values
from repro.workloads.trajectories import random_flights


class TestUnitWindow:
    def test_pass_through(self):
        u = UPoint.between(0.0, (-5.0, 1.0), 10.0, (15.0, 1.0))
        iv = upoint_within_rect_times(u, Rect(0, 0, 4, 4))
        # x(t) = -5 + 2t in [0, 4] -> t in [2.5, 4.5].
        assert iv.s == pytest.approx(2.5)
        assert iv.e == pytest.approx(4.5)

    def test_never_inside(self):
        u = UPoint.between(0.0, (0.0, 10.0), 10.0, (10.0, 10.0))
        assert upoint_within_rect_times(u, Rect(0, 0, 4, 4)) is None

    def test_always_inside(self):
        u = UPoint.between(0.0, (1.0, 1.0), 10.0, (3.0, 3.0))
        iv = upoint_within_rect_times(u, Rect(0, 0, 4, 4))
        assert (iv.s, iv.e) == (0.0, 10.0)

    def test_stationary_outside(self):
        u = UPoint.stationary(closed(0.0, 5.0), (100.0, 100.0))
        assert upoint_within_rect_times(u, Rect(0, 0, 4, 4)) is None

    def test_diagonal_corner_clip(self):
        u = UPoint.between(0.0, (0.0, 0.0), 10.0, (10.0, 10.0))
        iv = upoint_within_rect_times(u, Rect(4, 6, 8, 8))
        # x in [4,8] -> t in [4,8]; y in [6,8] -> t in [6,8]; joint [6,8].
        assert (iv.s, iv.e) == (6.0, 8.0)

    def test_mapping_level_multiple_visits(self):
        mp = MovingPoint.from_waypoints(
            [(0, (-5, 1)), (10, (15, 1)), (20, (-5, 1))]
        )
        times = mpoint_within_rect_times(mp, Rect(0, 0, 4, 4))
        assert len(times) == 2
        assert times.total_length() == pytest.approx(4.0)

    def test_matches_dense_sampling(self):
        for seed in range(5):
            mp = random_flights(1, legs=5, seed=seed)[0]
            rect = Rect(2000, 2000, 7000, 7000)
            times = mpoint_within_rect_times(mp, rect)
            t0, t1 = mp.start_time(), mp.end_time()
            for k in range(200):
                t = t0 + (t1 - t0) * k / 199.0
                p = mp.value_at(t)
                inside = p is not None and rect.contains_point(p.vec)
                assert times.contains(t) == inside, f"seed {seed}, t={t}"


class TestWindowEngine:
    def build(self, n=20, seed=9):
        engine = WindowQueryEngine()
        for i, f in enumerate(random_flights(n, legs=5, seed=seed)):
            engine.add(i, f)
        return engine

    def test_filtered_equals_naive(self):
        engine = self.build()
        rect = Rect(1000, 1000, 6000, 6000)
        got = engine.query(rect, 100.0, 900.0)
        naive = engine.query_naive(rect, 100.0, 900.0)
        assert got == naive

    def test_results_within_window(self):
        engine = self.build()
        rect = Rect(1000, 1000, 6000, 6000)
        for _key, times in engine.query(rect, 100.0, 900.0):
            assert times.minimum >= 100.0
            assert times.maximum <= 900.0

    def test_empty_window(self):
        engine = self.build()
        assert engine.query(Rect(1e7, 1e7, 1e7 + 1, 1e7 + 1), 0.0, 1.0) == []


class TestSvg:
    def test_render_static_values(self):
        region = Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        line = Line.polyline([(0, 0), (5, 12)])
        pts = Points([(2, 2), (8, 8)])
        svg = render_values([region, line, pts, Point(1, 9)])
        assert svg.startswith("<svg")
        assert svg.count("<path") == 1  # one region
        assert svg.count("<line") == 1
        assert svg.count("<circle") == 3  # two points + one point value
        assert "evenodd" in svg  # hole rendering

    def test_film_strip_region(self):
        mr = MovingRegion(
            [
                URegion.between_regions(
                    0.0, Region.box(0, 0, 2, 2), 10.0, Region.box(8, 0, 10, 2)
                )
            ]
        )
        svg = render_film_strip(mr, frames=4)
        assert svg.count("<path") == 4
        assert "t=0" in svg and "t=10" in svg

    def test_film_strip_point_with_trajectory(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 5))])
        svg = render_film_strip(mp, frames=3)
        assert svg.count("<circle") == 3
        assert "<line" in svg  # the trajectory backdrop

    def test_canvas_save(self, tmp_path):
        canvas = SvgCanvas(Rect(0, 0, 10, 10))
        canvas.add_points([(5, 5)], "#000000")
        path = tmp_path / "out.svg"
        canvas.save(str(path))
        assert path.read_text().startswith("<svg")

    def test_y_axis_flipped(self):
        canvas = SvgCanvas(Rect(0, 0, 10, 10), width=100, height=100, margin=0)
        low = canvas._map((5, 0))
        high = canvas._map((5, 10))
        assert low[1] > high[1]  # larger world y is higher on screen
