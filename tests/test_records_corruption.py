"""Corruption properties for every storage codec (Section 4 layouts).

The crash-safety contract at the value level: a stored value damaged by
truncation or bit flips must surface as a typed
:class:`~repro.errors.CorruptRecordError` (or decode to the original
value when the damage misses the prefix entirely, which the CRC makes
impossible) — never as a silently different value and never as a bare
``struct.error``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.base.instant import Instant
from repro.base.values import BoolVal, IntVal, RealVal, StringVal
from repro.errors import CorruptRecordError, StorageError
from repro.ranges.interval import Interval, closed
from repro.ranges.intime import Intime
from repro.ranges.rangeset import RangeSet
from repro.spatial.line import Line
from repro.spatial.point import Point
from repro.spatial.points import Points
from repro.spatial.region import Region
from repro.storage.records import (
    StoredValue,
    _CODECS,
    pack_value,
    safe_unpack,
    unpack_value,
)
from repro.temporal.mapping import (
    MovingBool,
    MovingInt,
    MovingLine,
    MovingPoint,
    MovingPoints,
    MovingReal,
    MovingRegion,
    MovingString,
)
from repro.temporal.mseg import MPoint
from repro.temporal.uconst import ConstUnit
from repro.temporal.uline import ULine
from repro.temporal.upoints import UPoints
from repro.temporal.ureal import UReal
from repro.temporal.uregion import URegion


def _samples():
    """One representative value per registered codec type name."""
    return {
        "int": IntVal(42),
        "real": RealVal(3.25),
        "bool": BoolVal(True),
        "string": StringVal("hello"),
        "instant": Instant(12.5),
        "point": Point(1.5, -2.5),
        "points": Points([(1, 2), (3, 4), (0, 0)]),
        "line": Line.polyline([(0, 0), (2, 2), (4, 0)]),
        "region": Region.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        ),
        "range": RangeSet(
            [closed(0.0, 1.0), Interval(3.0, 4.0, False, True)]
        ),
        "intime(real)": Intime(5.0, RealVal(2.5)),
        "intime(point)": Intime(5.0, Point(1, 2)),
        "mbool": MovingBool.piecewise(
            [(closed(0.0, 1.0), True), (Interval(1.0, 2.0, False, True), False)]
        ),
        "mint": MovingInt([ConstUnit(closed(0.0, 1.0), IntVal(7))]),
        "mstring": MovingString([ConstUnit(closed(0.0, 1.0), StringVal("go"))]),
        "mreal": MovingReal(
            [
                UReal(closed(0.0, 1.0), 1, 2, 3),
                UReal(Interval(1.0, 2.0, False, True), 0, 0, 4, r=True),
            ]
        ),
        "mpoint": MovingPoint.from_waypoints(
            [(0, (0, 0)), (5, (3, 4)), (9, (0, 0))]
        ),
        "mpoints": MovingPoints(
            [UPoints(closed(0.0, 1.0), [MPoint(0, 1, 0, 0), MPoint(5, 0, 5, 0)])]
        ),
        "mline": MovingLine(
            [
                ULine.between_lines(
                    0.0, Line([((0, 0), (1, 0))]), 5.0, Line([((2, 2), (3, 2))])
                )
            ]
        ),
        "mregion": MovingRegion(
            [
                URegion.between_regions(
                    0.0, Region.box(0, 0, 2, 2), 5.0, Region.box(4, 0, 6, 2)
                )
            ]
        ),
    }


SAMPLES = _samples()


def test_samples_cover_every_registered_codec():
    """A codec added without a corruption sample fails here."""
    assert set(SAMPLES) == set(_CODECS)


@pytest.mark.parametrize("type_name", sorted(SAMPLES))
def test_clean_roundtrip(type_name):
    value = SAMPLES[type_name]
    blob = pack_value(type_name, value).to_bytes()
    assert unpack_value(StoredValue.from_bytes(blob)) == value


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_bit_flip_never_silent(data):
    """Any single flipped bit is detected as a typed error.

    The decoded value is never silently different from the original:
    either :meth:`StoredValue.from_bytes` raises (the CRC prefix
    catches every one-bit change) or — vacuously — the value decodes
    back equal.
    """
    type_name = data.draw(st.sampled_from(sorted(SAMPLES)), label="type")
    blob = pack_value(type_name, SAMPLES[type_name]).to_bytes()
    pos = data.draw(
        st.integers(min_value=0, max_value=len(blob) - 1), label="byte"
    )
    bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
    damaged = bytearray(blob)
    damaged[pos] ^= 1 << bit
    try:
        value = unpack_value(StoredValue.from_bytes(bytes(damaged)))
    except CorruptRecordError:
        return
    assert value == SAMPLES[type_name], (
        f"one-bit flip at byte {pos} bit {bit} of a {type_name} decoded "
        "to a silently different value"
    )


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_truncation_always_typed(data):
    """Every proper prefix of a stored value raises CorruptRecordError."""
    type_name = data.draw(st.sampled_from(sorted(SAMPLES)), label="type")
    blob = pack_value(type_name, SAMPLES[type_name]).to_bytes()
    cut = data.draw(
        st.integers(min_value=0, max_value=len(blob) - 1), label="cut"
    )
    with pytest.raises(CorruptRecordError):
        unpack_value(StoredValue.from_bytes(blob[:cut]))


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_garbage_never_crashes_untyped(data):
    """Arbitrary bytes fail with a StorageError, not struct.error."""
    blob = data.draw(st.binary(max_size=64), label="blob")
    try:
        StoredValue.from_bytes(blob)
    except StorageError:
        pass


def test_safe_unpack_wraps_codec_blowups():
    """Damage below the CRC layer still surfaces as CorruptRecordError.

    A StoredValue whose arrays were lost (e.g. assembled by hand from a
    damaged page) makes the codec itself blow up; safe_unpack converts
    that to a typed error naming the type.
    """
    stored = pack_value("mpoint", SAMPLES["mpoint"])
    bare = StoredValue(stored.type_name, stored.root, [])
    with pytest.raises(CorruptRecordError, match="mpoint"):
        safe_unpack(bare)
