"""The query service: protocol, snapshot isolation, ingest durability.

Covers the PR-7 subsystem end to end: line-protocol parsing, the
executor's snapshot-isolated reads (a query pinned before an ingest
batch answers bit-identically to the pre-ingest state), the
append-only column extension path (``Mapping.appended``,
``Fleet.changes_since``, ``UnitColumn.extended``, the cache splice, the
store's ``extend_or_save``), WAL group commit + recovery replay, the
two new crash-matrix failpoints, and the live wire behaviour of the
asyncio session layer (including the ColumnCache concurrent-access
regression: two sessions, one mutating ingest).
"""

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import faults, obs
from repro.errors import InvalidValue, ProtocolError, QueryError
from repro.server.client import ServerClient, ServerError
from repro.server.executor import FleetExecutor
from repro.server.ingest import (
    GroupCommitter,
    IngestRequest,
    commit,
    decode_record,
    encode_record,
    replay_ingest,
)
from repro.server.protocol import (
    err_line,
    ok_line,
    parse_request,
    row_line,
)
from repro.server.session import serve_in_thread
from repro.storage import wal as walmod
from repro.storage.wal import Wal, WalRecord
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint
from repro.vector.cache import Fleet, clear_cache, column_for_versioned
from repro.vector.columns import BBoxColumn, UPointColumn
from repro.vector.store import ColumnStore, clear_store, set_store
from repro.workloads.trajectories import FlightGenerator


@pytest.fixture(autouse=True)
def _clean_slate():
    faults.disarm()
    faults.reset_fired()
    clear_store()
    clear_cache()
    yield
    faults.disarm()
    faults.reset_fired()
    clear_store()
    clear_cache()


def _mappings(n: int, seed: int = 7, legs: int = 3):
    gen = FlightGenerator(seed=seed)
    return [gen.flight(legs=legs) for _ in range(n)]


def _unit(t0, x0, y0, t1, x1, y1, **kw):
    return UPoint.between(t0, (x0, y0), t1, (x1, y1), **kw)


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_query_keeps_sql_verbatim(self):
        req = parse_request("QUERY SELECT id FROM planes;\n")
        assert req.command == "QUERY"
        assert req.sql == "SELECT id FROM planes;"

    def test_lowercase_command_accepted(self):
        assert parse_request("stats").command == "STATS"

    def test_ingest_parses_all_fields(self):
        req = parse_request("INGEST fleet 3 0.0 1 2 5.0 3 4")
        assert (req.fleet, req.obj) == ("fleet", 3)
        assert req.unit == (0.0, 1.0, 2.0, 5.0, 3.0, 4.0)

    def test_snapshot_with_window(self):
        req = parse_request("SNAPSHOT fleet 12.5 0 0 10 10")
        assert req.t == 12.5
        assert req.window == (0.0, 0.0, 10.0, 10.0)

    @pytest.mark.parametrize("line", [
        "",
        "FROB x",
        "QUERY",
        "EXPLAIN   ",
        "INGEST fleet 1 2 3",
        "INGEST fleet -1 0 0 0 1 1 1",
        "INGEST fleet one 0 0 0 1 1 1",
        "INGEST fleet 1 a 0 0 1 1 1",
        "SNAPSHOT fleet",
        "SNAPSHOT fleet 1 2 3",
        "SNAPSHOT fleet 1 9 9 0 0",
        "STATS now",
        "CLOSE please",
    ])
    def test_malformed_lines_raise_protocol_error(self, line):
        with pytest.raises(ProtocolError):
            parse_request(line)

    def test_response_framing_is_single_line(self):
        assert ok_line(rows=2) == "OK rows=2"
        assert row_line(obj=1, x=2.5) == "ROW obj=1\tx=2.5"
        err = err_line(QueryError("no\nsuch\tfleet"))
        assert err == "ERR QueryError no such fleet"
        assert "\n" not in err


# ---------------------------------------------------------------------------
# the append-only mutation path
# ---------------------------------------------------------------------------


class TestMappingAppended:
    def test_tail_append_matches_full_rebuild(self):
        m = _mappings(1)[0]
        u = _unit(1e6, 0, 0, 1e6 + 5, 1, 1)
        grown = m.appended(u)
        rebuilt = MovingPoint(list(m.units) + [u])
        assert len(grown.units) == len(m.units) + 1
        assert [w.interval for w in grown.units] == \
               [w.interval for w in rebuilt.units]
        # The original is untouched: a new slice, never a mutation.
        assert len(m.units) == len(grown.units) - 1

    def test_out_of_order_unit_falls_back_to_full_validation(self):
        a = _unit(0.0, 0, 0, 1.0, 1, 1, rc=False)
        c = _unit(4.0, 2, 2, 5.0, 3, 3)
        m = MovingPoint([a, c])
        b = _unit(2.0, 1, 1, 3.0, 2, 2, rc=False)
        grown = m.appended(b)
        assert [u.interval.s for u in grown.units] == [0.0, 2.0, 4.0]

    def test_overlapping_append_rejected(self):
        m = MovingPoint([_unit(0.0, 0, 0, 4.0, 1, 1)])
        with pytest.raises(InvalidValue):
            m.appended(_unit(2.0, 0, 0, 6.0, 1, 1))


class TestFleetChangelog:
    def test_setitem_is_tracked(self):
        fleet = Fleet(_mappings(4))
        v = fleet.version
        fleet[2] = fleet[2].appended(_unit(1e6, 0, 0, 1e6 + 1, 1, 1))
        assert fleet.changes_since(v) == {2}
        assert fleet.changes_since(fleet.version) == set()

    def test_tail_append_is_tracked(self):
        fleet = Fleet(_mappings(3))
        v = fleet.version
        fleet.append(_mappings(1, seed=9)[0])
        assert fleet.changes_since(v) == {3}

    def test_structural_mutation_forces_rebuild(self):
        fleet = Fleet(_mappings(3))
        v = fleet.version
        del fleet[0]
        assert fleet.changes_since(v) is None

    def test_unknown_versions_force_rebuild(self):
        fleet = Fleet(_mappings(2))
        assert fleet.changes_since(fleet.version + 1) is None
        assert fleet.changes_since(-50) is None


class TestColumnExtended:
    def test_upoint_extension_bit_identical(self):
        mappings = _mappings(5)
        col = UPointColumn.from_mappings(mappings)
        new = list(mappings)
        new[1] = new[1].appended(_unit(1e6, 0, 0, 1e6 + 5, 1, 1))
        new[4] = new[4].appended(_unit(2e6, 3, 3, 2e6 + 5, 4, 4))
        ext = col.extended(new, {1, 4})
        ref = UPointColumn.from_mappings(new)
        for f in ("offsets", "starts", "ends", "lc", "rc",
                  "x0", "x1", "y0", "y1"):
            assert np.array_equal(getattr(ext, f), getattr(ref, f)), f

    def test_bbox_extension_bit_identical(self):
        mappings = _mappings(4)
        col = BBoxColumn.from_mappings(mappings)
        new = list(mappings)
        new[0] = new[0].appended(_unit(1e6, 9, 9, 1e6 + 2, 10, 10))
        ext = col.extended(new, {0})
        ref = BBoxColumn.from_mappings(new)
        for f in ("xmin", "ymin", "tmin", "xmax", "ymax", "tmax"):
            assert np.array_equal(getattr(ext, f), getattr(ref, f)), f

    def test_extension_rejects_unlisted_growth(self):
        mappings = _mappings(3)
        col = UPointColumn.from_mappings(mappings)
        new = list(mappings) + [_mappings(1, seed=5)[0]]
        with pytest.raises(InvalidValue):
            col.extended(new, {0})  # object 3 appeared but is not listed

    def test_cache_splices_forward_on_ingest(self):
        fleet = Fleet(_mappings(4))
        _, before = column_for_versioned(fleet, "upoint")
        obs.reset()
        obs.enable()
        try:
            fleet[2] = fleet[2].appended(_unit(1e6, 0, 0, 1e6 + 5, 1, 1))
            version, after = column_for_versioned(fleet, "upoint")
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert version == fleet.version
        assert counters.get("colcache.extended") == 1
        assert "colcache.invalidations" not in counters
        ref = UPointColumn.from_mappings(list(fleet))
        assert np.array_equal(after.offsets, ref.offsets)
        assert np.array_equal(after.x0, ref.x0)


class TestStoreExtension:
    def test_tail_extension_appends_in_place(self, tmp_path):
        mappings = _mappings(4)
        store = ColumnStore(tmp_path)
        col = UPointColumn.from_mappings(mappings)
        store.save("upoint", col, n_objects=len(mappings))
        new = list(mappings)
        new[3] = new[3].appended(_unit(1e6, 0, 0, 1e6 + 5, 1, 1))
        obs.reset()
        obs.enable()
        try:
            out = store.extend_or_save(
                "upoint", UPointColumn.from_mappings(new), min_changed=3,
                n_objects=len(new),
            )
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters.get("colstore.extends") == 1
        assert "colstore.rewrites" not in counters
        ref = UPointColumn.from_mappings(new)
        assert np.array_equal(np.asarray(out.x0), ref.x0)
        store.verify("upoint")
        # A reopened process reads the extended bytes.
        assert np.array_equal(
            np.asarray(ColumnStore(tmp_path).load("upoint").x0), ref.x0
        )

    def test_missing_kind_falls_back_to_full_save(self, tmp_path):
        mappings = _mappings(3)
        store = ColumnStore(tmp_path)
        obs.reset()
        obs.enable()
        try:
            store.extend_or_save(
                "upoint", UPointColumn.from_mappings(mappings),
                min_changed=0, n_objects=len(mappings),
            )
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters.get("colstore.rewrites") == 1
        store.verify("upoint")

    def test_pinned_memmap_views_survive_extension(self, tmp_path):
        mappings = _mappings(4)
        set_store(tmp_path)
        fleet = Fleet(mappings)
        _, pinned = column_for_versioned(fleet, "upoint")
        assert pinned.source is not None  # actually memory-mapped
        frozen = np.array(pinned.x0)
        # Tail ingest (pure append) and mid-fleet ingest (rename path).
        fleet[3] = fleet[3].appended(_unit(1e6, 0, 0, 1e6 + 5, 1, 1))
        column_for_versioned(fleet, "upoint")
        fleet[1] = fleet[1].appended(_unit(2e6, 0, 0, 2e6 + 5, 1, 1))
        _, latest = column_for_versioned(fleet, "upoint")
        assert np.array_equal(np.array(pinned.x0), frozen)
        ref = UPointColumn.from_mappings(list(fleet))
        assert np.array_equal(np.asarray(latest.x0), ref.x0)


# ---------------------------------------------------------------------------
# executor: snapshot isolation
# ---------------------------------------------------------------------------


class TestExecutorIsolation:
    def test_pinned_snapshot_is_bit_identical_across_ingest(self):
        ex = FleetExecutor()
        fleet = ex.register_fleet("fleet", _mappings(6))
        t_future = 1e6 + 4.0
        _, rows_before = ex.snapshot_rows("fleet", t_future)
        assert rows_before == []  # nothing defined out there yet

        # A query "starts": its snapshot pins version + members.
        snap = ex.snapshot("fleet")
        pre_column = UPointColumn.from_mappings(list(snap.items))

        # An ingest batch lands while that query is in flight.
        commit(None, ex, [
            IngestRequest("fleet", 0, (1e6, 0, 0, 1e6 + 8, 1, 1)),
            IngestRequest("fleet", 2, (1e6, 5, 5, 1e6 + 8, 6, 6)),
        ])

        # The pinned column still describes the pre-ingest fleet, byte
        # for byte, even though the live fleet moved on.
        col = ex._pinned_column(fleet, snap, "upoint")
        for f in ("offsets", "starts", "x0", "y0"):
            assert np.array_equal(
                np.asarray(getattr(col, f)), getattr(pre_column, f)
            ), f

        # A query started *after* the batch sees every new unit.
        _, rows_after = ex.snapshot_rows("fleet", t_future)
        assert sorted(i for i, _, _ in rows_after) == [0, 2]

    def test_snapshot_rows_window_filter(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(1))
        commit(None, ex, [
            IngestRequest("fleet", 0, (1e6, 0, 0, 1e6 + 10, 0, 0)),
            IngestRequest("fleet", 0, (2e6, 100, 100, 2e6 + 10, 100, 100)),
        ])
        _, hit = ex.snapshot_rows("fleet", 1e6 + 5, window=(-1, -1, 1, 1))
        _, miss = ex.snapshot_rows("fleet", 1e6 + 5, window=(50, 50, 60, 60))
        assert [i for i, _, _ in hit] == [0]
        assert miss == []

    def test_ingest_continuation_closes_left_boundary(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", [MovingPoint([_unit(0, 0, 0, 10, 1, 1)])])
        # A different heading, so the slices stay distinct units.
        results = commit(
            None, ex, [IngestRequest("fleet", 0, (10, 1, 1, 20, 5, 5))]
        )
        assert results == [2]
        units = ex.fleet("fleet")[0].units
        assert units[1].interval.lc is False  # prior slice owns t=10

    def test_ingest_same_heading_continuation_rejected_as_typed_error(self):
        # Appending a slice that linearly extends the last one violates
        # the mapping's minimality invariant — a typed, per-request
        # rejection, not a server failure.
        ex = FleetExecutor()
        ex.register_fleet("fleet", [MovingPoint([_unit(0, 0, 0, 10, 1, 1)])])
        results = commit(
            None, ex, [IngestRequest("fleet", 0, (10, 1, 1, 20, 2, 2))]
        )
        assert isinstance(results[0], InvalidValue)
        assert len(ex.fleet("fleet")[0].units) == 1

    def test_ingest_past_end_rejected_others_land(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(2))
        results = commit(None, ex, [
            IngestRequest("fleet", 7, (1e6, 0, 0, 1e6 + 1, 1, 1)),
            IngestRequest("fleet", 2, (1e6, 0, 0, 1e6 + 1, 1, 1)),  # append
        ])
        assert isinstance(results[0], InvalidValue)
        assert results[1] == 1
        assert len(ex.fleet("fleet")) == 3

    def test_unknown_fleet_is_a_query_error(self):
        with pytest.raises(QueryError):
            FleetExecutor().snapshot_rows("ghost", 0.0)


# ---------------------------------------------------------------------------
# WAL group commit + replay
# ---------------------------------------------------------------------------


class TestIngestDurability:
    def test_record_round_trip(self):
        req = IngestRequest("fleet", 3, (0.5, 1.0, 2.0, 9.5, 3.0, 4.0))
        scope, payload = encode_record(req)
        assert scope == "fleet:fleet"
        rec = WalRecord(walmod.INGEST, scope, payload)
        assert decode_record(rec) == req

    def test_batch_is_one_sync(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(3))
        wal = Wal()
        batch = [
            IngestRequest("fleet", i, (1e6, 0, 0, 1e6 + 5, 1, 1))
            for i in range(3)
        ]
        obs.reset()
        obs.enable()
        try:
            commit(wal, ex, batch)
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters.get("ingest.group_commits") == 1
        assert counters.get("ingest.units") == 3
        assert sum(
            1 for r in wal.records() if r.rec_type == walmod.INGEST
        ) == 3

    def test_replay_restores_exactly_the_durable_prefix(self):
        baseline = _mappings(3)
        ex = FleetExecutor()
        ex.register_fleet("fleet", baseline)
        wal = Wal()
        commit(wal, ex, [IngestRequest("fleet", 1, (1e6, 0, 0, 1e6 + 5, 1, 1))])
        # A buffered-but-unsynced record must not survive "the crash".
        scope, payload = encode_record(
            IngestRequest("fleet", 0, (2e6, 0, 0, 2e6 + 5, 1, 1))
        )
        wal.append(walmod.INGEST, payload, scope=scope)
        wal.crash()

        ex2 = FleetExecutor()
        fleet2 = ex2.register_fleet("fleet", baseline)
        assert replay_ingest(wal, ex2) == 1
        assert [len(m.units) for m in fleet2] == \
               [len(m.units) + (1 if i == 1 else 0)
                for i, m in enumerate(baseline)]

    def test_group_committer_batches_concurrent_submits(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(4))
        wal = Wal()

        async def drive():
            committer = GroupCommitter(wal, ex, max_batch=64, max_delay=0.02)
            results = await asyncio.gather(*[
                committer.submit(IngestRequest(
                    "fleet", i % 4,
                    (1e6 + 20.0 * (i // 4), 0, 0,
                     1e6 + 20.0 * (i // 4) + 10.0, 1, 1),
                ))
                for i in range(12)
            ])
            await committer.stop()
            return results

        obs.reset()
        obs.enable()
        try:
            results = asyncio.run(drive())
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert all(isinstance(r, int) for r in results)
        assert counters.get("ingest.units") == 12
        # Coalesced: far fewer durability barriers than requests.
        assert 1 <= counters.get("ingest.group_commits") < 12

    def test_crash_matrix_covers_both_ingest_failpoints(self):
        from repro.storage.crashmatrix import format_matrix, run_crash_matrix

        for name in ("wal.group_commit_crash", "server.ingest_crash"):
            entries = run_crash_matrix(seed=4, only=name)
            assert len(entries) == 1 and entries[0].ok, \
                format_matrix(entries)

    def test_crash_matrix_should_stop_halts_cleanly(self):
        from repro.storage.crashmatrix import run_crash_matrix

        assert run_crash_matrix(seed=4, should_stop=lambda: True) == []


# ---------------------------------------------------------------------------
# concurrency: two sessions, one mutating ingest
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_column_cache_concurrent_reads_during_ingest(self):
        """Regression: unlocked cache access could pair a version stamp
        with another version's bytes mid-extension."""
        fleet = Fleet(_mappings(6))
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    _, col = column_for_versioned(fleet, "upoint")
                    n = len(col.offsets) - 1
                    if n != col.n_objects or len(col.x0) != col.offsets[-1]:
                        errors.append("inconsistent column served")
                except Exception as exc:  # pragma: no cover - the failure
                    errors.append(repr(exc))

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for th in readers:
            th.start()
        try:
            for k in range(60):
                i = k % len(fleet)
                t0 = 1e6 + 20.0 * (k // len(fleet))
                fleet[i] = fleet[i].appended(
                    _unit(t0, 0, 0, t0 + 10.0, 1, 1)
                )
        finally:
            stop.set()
            for th in readers:
                th.join(timeout=10)
        assert errors == []
        _, final = column_for_versioned(fleet, "upoint")
        ref = UPointColumn.from_mappings(list(fleet))
        assert np.array_equal(np.asarray(final.offsets), ref.offsets)

    def test_two_wire_sessions_one_ingesting(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(4))
        run = serve_in_thread(ex)
        errors = []
        try:
            def ingester():
                try:
                    with ServerClient("127.0.0.1", run.port) as c:
                        for k in range(30):
                            t0 = 1e6 + 20.0 * (k // 4)
                            c.ingest("fleet", k % 4,
                                     (t0, 0, 0, t0 + 10.0, 1, 1))
                except Exception as exc:  # pragma: no cover
                    errors.append(repr(exc))

            th = threading.Thread(target=ingester)
            th.start()
            with ServerClient("127.0.0.1", run.port) as c:
                last_version = -1
                while th.is_alive():
                    reply = c.snapshot("fleet", 60.0)
                    version = int(reply.fields["version"])
                    assert version >= last_version
                    last_version = version
            th.join(timeout=20)
        finally:
            run.stop()
        assert errors == []
        assert sum(len(m.units) for m in ex.fleet("fleet")) == \
               sum(len(m.units) for m in _mappings(4)) + 30


# ---------------------------------------------------------------------------
# the wire
# ---------------------------------------------------------------------------


class TestWire:
    @pytest.fixture()
    def server(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(4))
        run = serve_in_thread(ex)
        yield run
        run.stop()

    def test_error_does_not_tear_session_down(self, server):
        with ServerClient("127.0.0.1", server.port) as c:
            with pytest.raises(ServerError, match="unknown command"):
                c.request("FROB 1")
            with pytest.raises(ServerError) as exc_info:
                c.snapshot("ghost", 0.0)
            assert exc_info.value.remote_type == "QueryError"
            assert len(c.snapshot("fleet", 60.0).rows) == 4  # still alive

    def test_query_and_explain_over_the_wire(self, server):
        with ServerClient("127.0.0.1", server.port) as c:
            c.query("CREATE TABLE planes (id string, flight mpoint);")
            c.query("INSERT INTO planes VALUES "
                    "('LH1', 'MPOINT ([0 10] 0 1 0 0)');")
            rows = c.query("SELECT id FROM planes;").rows
            assert rows == [{"id": "LH1"}]
            plan = c.explain("SELECT id FROM planes;")
            assert any(ln.startswith("PLAN") for ln in plan.lines)

    def test_stats_exposes_fleet_and_latency(self, server):
        with ServerClient("127.0.0.1", server.port) as c:
            c.snapshot("fleet", 60.0)
            stats = c.stats()
            assert stats.stat("fleet.fleet.objects") == "4"
            assert stats.stat("query_p50_ms") is not None

    def test_wire_snapshot_isolation_versions(self, server):
        with ServerClient("127.0.0.1", server.port) as c:
            before = c.snapshot("fleet", 1e6 + 5)
            assert before.rows == []
            c.ingest("fleet", 0, (1e6, 0, 0, 1e6 + 10, 1, 1))
            after = c.snapshot("fleet", 1e6 + 5)
            assert int(after.fields["version"]) > \
                   int(before.fields["version"])
            assert len(after.rows) == 1


# ---------------------------------------------------------------------------
# the serve command: signals, drain, WAL replay across restarts
# ---------------------------------------------------------------------------


class TestServeCommand:
    def _spawn(self, walpath):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--objects", "3",
             "--wal", str(walpath)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        boot = proc.stdout.readline()
        port = int(re.search(r":(\d+),", boot).group(1))
        return proc, boot, port

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_signal_drains_and_exits_zero(self, tmp_path, sig):
        proc, boot, port = self._spawn(tmp_path / "serve.wal")
        try:
            with ServerClient("127.0.0.1", port) as c:
                c.ingest("fleet", 0, (1e6, 0, 0, 1e6 + 9, 2, 2))
            proc.send_signal(sig)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup only
                proc.kill()
        assert proc.returncode == 0
        assert "drained cleanly" in out
        assert "WAL synced" in out

        # Restart: the ingested unit comes back via WAL replay.
        proc2, boot2, _ = self._spawn(tmp_path / "serve.wal")
        try:
            assert "1 ingested unit(s) replayed" in boot2
            proc2.send_signal(signal.SIGTERM)
            out2, _ = proc2.communicate(timeout=30)
        finally:
            if proc2.poll() is None:  # pragma: no cover - cleanup only
                proc2.kill()
        assert proc2.returncode == 0
