"""Tests for the mapping constructor — the sliced representation (Sec. 3.2.4)."""

import pytest

from repro.base.values import BoolVal, IntVal, RealVal
from repro.errors import InvalidValue, UndefinedValue
from repro.ranges.interval import Interval, closed, interval_at, open_interval
from repro.ranges.rangeset import RangeSet
from repro.spatial.point import Point
from repro.temporal.mapping import (
    Mapping,
    MovingBool,
    MovingInt,
    MovingPoint,
    MovingReal,
)
from repro.temporal.uconst import ConstUnit
from repro.temporal.upoint import UPoint
from repro.temporal.ureal import UReal


def cu(s, e, v, lc=True, rc=True):
    return ConstUnit(Interval(s, e, lc, rc), IntVal(v))


class TestInvariants:
    def test_empty_mapping(self):
        m = MovingInt()
        assert len(m) == 0 and not m

    def test_units_sorted_by_interval(self):
        m = MovingInt([cu(5.0, 6.0, 2), cu(0.0, 1.0, 1)])
        assert [u.interval.s for u in m.units] == [0.0, 5.0]

    def test_overlapping_units_rejected(self):
        with pytest.raises(InvalidValue):
            MovingInt([cu(0.0, 2.0, 1), cu(1.0, 3.0, 2)])

    def test_duplicate_interval_rejected(self):
        with pytest.raises(InvalidValue):
            MovingInt([cu(0.0, 1.0, 1), cu(0.0, 1.0, 2)])

    def test_adjacent_same_value_rejected(self):
        # Minimality: adjacent units with the same function must merge.
        with pytest.raises(InvalidValue):
            MovingInt([cu(0.0, 1.0, 7), cu(1.0, 2.0, 7, lc=False)])

    def test_adjacent_distinct_values_ok(self):
        m = MovingInt([cu(0.0, 1.0, 1), cu(1.0, 2.0, 2, lc=False)])
        assert len(m) == 2

    def test_normalized_merges(self):
        m = MovingInt.normalized([cu(0.0, 1.0, 7), cu(1.0, 2.0, 7, lc=False)])
        assert len(m) == 1
        assert m.units[0].interval == closed(0.0, 2.0)

    def test_unit_type_enforced(self):
        with pytest.raises(InvalidValue):
            MovingReal([cu(0.0, 1.0, 1)])

    def test_immutable(self):
        m = MovingInt([cu(0.0, 1.0, 1)])
        with pytest.raises(AttributeError):
            m._units = ()


class TestEvaluation:
    def setup_method(self):
        self.m = MovingInt(
            [cu(0.0, 2.0, 1), cu(2.0, 4.0, 2, lc=False), cu(7.0, 9.0, 3)]
        )

    def test_unit_at_binary_search(self):
        assert self.m.unit_at(1.0).value == IntVal(1)
        assert self.m.unit_at(2.0).value == IntVal(1)  # closed right end
        assert self.m.unit_at(3.0).value == IntVal(2)
        assert self.m.unit_at(8.0).value == IntVal(3)

    def test_unit_at_gap_is_none(self):
        assert self.m.unit_at(5.0) is None
        assert self.m.unit_at(-1.0) is None
        assert self.m.unit_at(10.0) is None

    def test_value_at(self):
        assert self.m.value_at(1.0) == IntVal(1)
        assert self.m.value_at(5.0) is None

    def test_at_instant(self):
        got = self.m.at_instant(3.0)
        assert got.time == 3.0 and got.val == IntVal(2)
        assert self.m.at_instant(5.0) is None

    def test_present(self):
        assert self.m.present(1.0)
        assert not self.m.present(5.0)

    def test_deftime(self):
        assert self.m.deftime() == RangeSet(
            [closed(0.0, 4.0), closed(7.0, 9.0)]
        )

    def test_start_end(self):
        assert self.m.start_time() == 0.0
        assert self.m.end_time() == 9.0

    def test_start_of_empty_raises(self):
        with pytest.raises(UndefinedValue):
            MovingInt().start_time()

    def test_initial_final(self):
        assert self.m.initial().val == IntVal(1)
        assert self.m.initial().time == 0.0
        assert self.m.final().val == IntVal(3)
        assert self.m.final().time == 9.0

    def test_initial_of_empty_is_none(self):
        assert MovingInt().initial() is None


class TestRestriction:
    def setup_method(self):
        self.m = MovingInt([cu(0.0, 4.0, 1), cu(6.0, 10.0, 2)])

    def test_at_periods(self):
        got = self.m.at_periods(RangeSet([closed(2.0, 7.0)]))
        assert got.deftime() == RangeSet([closed(2.0, 4.0), closed(6.0, 7.0)])

    def test_at_periods_preserves_values(self):
        got = self.m.at_periods(RangeSet([closed(2.0, 7.0)]))
        assert got.value_at(3.0) == IntVal(1)
        assert got.value_at(6.5) == IntVal(2)

    def test_restricted_to(self):
        got = self.m.restricted_to(closed(3.0, 8.0))
        assert got.deftime() == RangeSet([closed(3.0, 4.0), closed(6.0, 8.0)])

    def test_restriction_type_preserved(self):
        got = self.m.restricted_to(closed(3.0, 8.0))
        assert isinstance(got, MovingInt)


class TestMovingBool:
    def test_piecewise(self):
        mb = MovingBool.piecewise(
            [(closed(0.0, 1.0), True), (Interval(1.0, 2.0, False, True), False)]
        )
        assert mb.value_at(0.5) == BoolVal(True)
        assert mb.value_at(1.5) == BoolVal(False)

    def test_when(self):
        mb = MovingBool.piecewise(
            [(closed(0.0, 1.0), True), (Interval(1.0, 2.0, False, True), False)]
        )
        assert mb.when(True) == RangeSet([closed(0.0, 1.0)])
        assert mb.when(False) == RangeSet([Interval(1.0, 2.0, False, True)])

    def test_negated(self):
        mb = MovingBool.piecewise([(closed(0.0, 1.0), True)])
        assert mb.negated().value_at(0.5) == BoolVal(False)


class TestMovingReal:
    def test_min_max_across_units(self):
        m = MovingReal(
            [
                UReal(closed(0.0, 1.0), 0, 1, 0),  # 0..1
                UReal(Interval(1.0, 2.0, False, True), 0, -3, 5),  # 2..-1
            ]
        )
        assert m.minimum() == -1.0
        assert m.maximum() == 2.0

    def test_rangevalues(self):
        m = MovingReal([UReal(closed(0.0, 1.0), 0, 1, 0)])
        assert m.rangevalues() == RangeSet([closed(0.0, 1.0)])


class TestMovingPoint:
    def test_from_waypoints(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (10, 0)), (20, (10, 10))])
        assert len(mp) == 2
        assert mp.value_at(15.0) == Point(10, 5)

    def test_from_waypoints_needs_two(self):
        with pytest.raises(InvalidValue):
            MovingPoint.from_waypoints([(0, (0, 0))])

    def test_from_waypoints_strictly_increasing(self):
        with pytest.raises(InvalidValue):
            MovingPoint.from_waypoints([(0, (0, 0)), (0, (1, 1))])

    def test_waypoints_merge_collinear_motion(self):
        # Same velocity across the middle waypoint: one unit suffices.
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (5, (5, 0)), (10, (10, 0))])
        assert len(mp) == 1

    def test_trajectory(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (3, 4))])
        assert mp.trajectory().length() == pytest.approx(5.0)

    def test_trajectory_drops_stationary(self):
        mp = MovingPoint.from_waypoints(
            [(0, (0, 0)), (10, (3, 4)), (20, (3, 4)), (30, (6, 8))]
        )
        assert mp.trajectory().length() == pytest.approx(10.0)

    def test_travelled_length_counts_repeats(self):
        # Back and forth: trajectory length 5, travelled length 10.
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (3, 4)), (20, (0, 0))])
        assert mp.trajectory().length() == pytest.approx(5.0)
        assert mp.length() == pytest.approx(10.0)

    def test_speed(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (1, (3, 4))])
        assert mp.speed().value_at(0.5).value == pytest.approx(5.0)

    def test_bounding_cube(self):
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (4, 2))])
        c = mp.bounding_cube()
        assert (c.tmin, c.tmax) == (0, 10)
