"""Tests for the mini-DBMS: schemas, relations, catalog, SQL."""

import pytest

from repro.base.values import IntVal, RealVal, StringVal
from repro.db import Database, Schema
from repro.db.expressions import Call, Column, Compare, Literal, register_function
from repro.db.relation import Relation
from repro.db.sql import parse_query, run_query
from repro.errors import CatalogError, QueryError
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint


class TestSchema:
    def test_valid(self):
        s = Schema([("a", "int"), ("b", "mpoint")])
        assert s.names == ["a", "b"]
        assert s.type_of("b") == "mpoint"

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema([("a", "int"), ("a", "real")])

    def test_unknown_type_rejected(self):
        with pytest.raises(CatalogError):
            Schema([("a", "blob")])

    def test_index_of(self):
        s = Schema([("a", "int"), ("b", "real")])
        assert s.index_of("b") == 1
        with pytest.raises(CatalogError):
            s.index_of("zzz")

    def test_contains(self):
        s = Schema([("a", "int")])
        assert "a" in s and "b" not in s


class TestRelation:
    def test_insert_scan(self):
        r = Relation("t", Schema([("x", "int"), ("y", "string")]))
        r.insert([IntVal(1), StringVal("a")])
        r.insert_dict({"x": IntVal(2), "y": StringVal("b")})
        rows = r.rows()
        assert len(rows) == 2
        assert rows[0]["x"] == IntVal(1)

    def test_scalar_coercion(self):
        r = Relation("t", Schema([("x", "int")]))
        r.insert([5])
        assert r.rows()[0]["x"] == IntVal(5)

    def test_arity_checked(self):
        r = Relation("t", Schema([("x", "int")]))
        with pytest.raises(CatalogError):
            r.insert([1, 2])

    def test_materialized_roundtrip(self):
        r = Relation(
            "t", Schema([("name", "string"), ("track", "mpoint")]), materialized=True
        )
        mp = MovingPoint.from_waypoints([(0, (0, 0)), (10, (5, 5))])
        r.insert([StringVal("a"), mp])
        row = r.rows()[0]
        assert row["track"] == mp
        assert r.storage_stats() is not None

    def test_in_memory_has_no_storage_stats(self):
        r = Relation("t", Schema([("x", "int")]))
        assert r.storage_stats() is None


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_relation("t", [("x", "int")])
        assert "t" in db
        assert db.relation("t").name == "t"

    def test_duplicate_rejected(self):
        db = Database()
        db.create_relation("t", [("x", "int")])
        with pytest.raises(CatalogError):
            db.create_relation("t", [("x", "int")])

    def test_drop(self):
        db = Database()
        db.create_relation("t", [("x", "int")])
        db.drop_relation("t")
        assert "t" not in db
        with pytest.raises(CatalogError):
            db.drop_relation("t")

    def test_unknown_relation(self):
        with pytest.raises(CatalogError):
            Database().relation("nope")


class TestParser:
    def test_simple(self):
        q = parse_query("SELECT a, b FROM t WHERE a > 1")
        assert len(q.items) == 2
        assert q.tables == [("t", "t")]
        assert q.where is not None

    def test_star(self):
        q = parse_query("SELECT * FROM t")
        assert q.items is None

    def test_aliases(self):
        q = parse_query("SELECT p.a FROM planes p, planes q")
        assert q.tables == [("planes", "p"), ("planes", "q")]

    def test_function_calls_nest(self):
        q = parse_query("SELECT f(g(x), 3) AS out FROM t")
        expr = q.items[0].expr
        assert isinstance(expr, Call) and expr.func == "f"
        assert isinstance(expr.args[0], Call)

    def test_string_literals(self):
        q = parse_query("SELECT a FROM t WHERE a = 'x'")
        assert isinstance(q.where, Compare)
        assert q.where.right == Literal("x")

    def test_paper_quoting_style(self):
        # The paper writes ``Lufthansa''.
        q = parse_query("SELECT a FROM t WHERE a = ``Lufthansa''")
        assert q.where.right == Literal("Lufthansa")

    def test_boolean_precedence(self):
        q = parse_query("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        from repro.db.expressions import Or

        assert isinstance(q.where, Or)

    def test_limit(self):
        assert parse_query("SELECT a FROM t LIMIT 5").limit == 5

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT FROM")
        with pytest.raises(QueryError):
            parse_query("SELECT a FROM t WHERE ???")


@pytest.fixture
def planes_db():
    db = Database()
    planes = db.create_relation(
        "planes", [("airline", "string"), ("id", "string"), ("flight", "mpoint")]
    )
    planes.insert(
        ["Lufthansa", "LH1", MovingPoint.from_waypoints([(0, (0, 0)), (100, (6000, 0))])]
    )
    planes.insert(
        ["Lufthansa", "LH2", MovingPoint.from_waypoints([(0, (0, 10)), (100, (3000, 10))])]
    )
    planes.insert(
        ["AirFrance", "AF1", MovingPoint.from_waypoints([(0, (0, 0.2)), (100, (6000, 0.2))])]
    )
    return db


class TestQueries:
    def test_projection_and_filter(self, planes_db):
        rows = planes_db.query("SELECT id FROM planes WHERE airline = 'Lufthansa'")
        assert sorted(r["id"].value for r in rows) == ["LH1", "LH2"]

    def test_select_star(self, planes_db):
        rows = planes_db.query("SELECT * FROM planes")
        assert len(rows) == 3

    def test_limit(self, planes_db):
        assert len(planes_db.query("SELECT id FROM planes LIMIT 2")) == 2

    def test_paper_query_1(self, planes_db):
        rows = planes_db.query(
            "SELECT airline, id FROM planes "
            "WHERE airline = ``Lufthansa'' AND length(trajectory(flight)) > 5000"
        )
        assert [r["id"].value for r in rows] == ["LH1"]

    def test_paper_query_2_join(self, planes_db):
        rows = planes_db.query(
            "SELECT p.airline, p.id AS pid, q.airline, q.id AS qid "
            "FROM planes p, planes q "
            "WHERE p.id < q.id "
            "AND val(initial(atmin(distance(p.flight, q.flight)))) < 0.5"
        )
        pairs = sorted((r["pid"].value, r["qid"].value) for r in rows)
        assert pairs == [("AF1", "LH1")]  # 0.2 apart; LH2 is 10 away

    def test_unknown_function(self, planes_db):
        with pytest.raises(QueryError):
            planes_db.query("SELECT frobnicate(id) FROM planes")

    def test_unknown_column(self, planes_db):
        with pytest.raises(QueryError):
            planes_db.query("SELECT missing FROM planes")

    def test_ambiguous_column(self, planes_db):
        with pytest.raises(QueryError):
            planes_db.query("SELECT id FROM planes p, planes q LIMIT 1")

    def test_register_function(self, planes_db):
        register_function("double_len", lambda l: l.length() * 2)
        rows = planes_db.query(
            "SELECT double_len(trajectory(flight)) AS d FROM planes WHERE id = 'LH2'"
        )
        assert rows[0]["d"] == pytest.approx(6000.0)

    def test_spatial_predicate_in_query(self, planes_db):
        register_function("corridor", lambda: Region.box(-100, -5, 7000, 5))
        rows = planes_db.query(
            "SELECT id FROM planes WHERE passes(flight, corridor())"
        )
        ids = sorted(r["id"].value for r in rows)
        assert ids == ["AF1", "LH1"]
