"""Resilience tests: deadlines, admission control, idempotent retries,
worker-failure recovery, and the live chaos matrix.

Covers the PR-9 surface end to end: the :mod:`repro.deadline` budget
algebra (unit + Hypothesis properties), the wire-level ``DEADLINE`` /
``SEQ`` attributes, the session layer's overload shedding, the
client's typed timeout + retry loop, the parallel dispatcher's
SIGKILL survival, and the chaos matrix that ties them together.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config, faults, obs
from repro.deadline import Deadline, active, current
from repro.errors import (
    DeadlineExceeded,
    InvalidValue,
    Overloaded,
    ProtocolError,
)
from repro.parallel import parallel_window_intervals, pool, shmcol
from repro.server.client import (
    ClientTimeout,
    ConnectionLost,
    ServerClient,
    ServerError,
    jittered_backoff,
)
from repro.server.executor import FleetExecutor
from repro.server.ingest import IngestRequest, decode_record, encode_record
from repro.server.protocol import parse_request
from repro.server.session import serve_in_thread
from repro.spatial.bbox import Rect
from repro.storage.wal import Wal, WalRecord
from repro.temporal.mapping import MovingPoint
from repro.temporal.upoint import UPoint
from repro.vector.cache import clear_cache
from repro.vector.store import _BUILDERS, clear_store
from repro.workloads.trajectories import FlightGenerator


@pytest.fixture(autouse=True)
def _clean_slate():
    faults.disarm()
    faults.reset_fired()
    clear_store()
    clear_cache()
    yield
    faults.disarm()
    faults.reset_fired()
    clear_store()
    clear_cache()
    pool.shutdown()
    shmcol.release_all()


def _mappings(n: int, seed: int = 7, legs: int = 3):
    gen = FlightGenerator(seed=seed)
    return [gen.flight(legs=legs) for _ in range(n)]


def _track(idx: int, units: int = 3) -> MovingPoint:
    out = []
    pos = (float(idx), float(idx) + 1.0)
    for k in range(units):
        t0, t1 = k * 3.0, k * 3.0 + 2.5
        nxt = (pos[0] + 1.0, pos[1] + 0.5)
        out.append(UPoint.between(t0, pos, t1, nxt, rc=False))
        pos = nxt
    return MovingPoint(out)


# ---------------------------------------------------------------------------
# the Deadline budget algebra
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_after_and_remaining(self):
        dl = Deadline.after(10_000.0)
        assert 0.0 < dl.remaining_s() <= 10.0
        assert not dl.expired()
        dl.check()  # must not raise

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(InvalidValue):
            Deadline.after(0.0)
        with pytest.raises(InvalidValue):
            Deadline.after(-5.0)

    def test_expired_deadline_checks_typed(self):
        dl = Deadline(time.monotonic() - 1.0, 1.0)
        assert dl.expired()
        assert dl.remaining_s() == 0.0
        with pytest.raises(DeadlineExceeded, match="1ms"):
            dl.check()

    def test_child_tightens_never_extends(self):
        parent = Deadline.after(50.0)
        child = parent.child(10_000.0)
        assert child.expires_at <= parent.expires_at
        tight = parent.child(1.0)
        assert tight.expires_at <= parent.expires_at

    def test_thread_local_binding_nests_and_restores(self):
        assert current() is None
        outer = Deadline.after(10_000.0)
        inner = Deadline.after(5_000.0)
        with active(outer):
            assert current() is outer
            with active(inner):
                assert current() is inner
            assert current() is outer
            with active(None):  # no-op binding
                assert current() is outer
        assert current() is None

    def test_binding_is_per_thread(self):
        seen = {}
        with active(Deadline.after(10_000.0)):
            th = threading.Thread(
                target=lambda: seen.setdefault("other", current())
            )
            th.start()
            th.join()
        assert seen["other"] is None


@settings(max_examples=200, deadline=None)
@given(
    attempt=st.integers(min_value=0, max_value=20),
    base=st.floats(min_value=0.1, max_value=500.0),
    cap=st.floats(min_value=1.0, max_value=10_000.0),
    factor=st.floats(min_value=0.0, max_value=1.0),
    u=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_backoff_bounded_and_jitter_within_factor(attempt, base, cap, factor, u):
    """The backoff never exceeds the cap and stays within ±factor of
    the ideal exponential curve (itself capped)."""
    delay = jittered_backoff(attempt, base, cap, factor, u)
    ideal = min(cap, base * 2.0 ** attempt)
    assert delay <= cap * (1 + 1e-12)
    assert delay >= ideal * (1.0 - factor) - 1e-9
    assert delay <= min(cap, ideal * (1.0 + factor)) + 1e-9


@settings(max_examples=200, deadline=None)
@given(
    parent_ms=st.floats(min_value=0.001, max_value=60_000.0),
    child_ms=st.floats(min_value=0.001, max_value=120_000.0),
)
def test_child_deadline_monotone(parent_ms, child_ms):
    """Propagation is monotone: a child budget never outlives its
    parent's remaining budget, whatever the requested sub-budget."""
    parent = Deadline.after(parent_ms)
    child = parent.child(child_ms)
    assert child.expires_at <= parent.expires_at + 1e-9
    assert child.remaining_ms() <= parent.remaining_ms() + 1.0


# ---------------------------------------------------------------------------
# protocol attributes
# ---------------------------------------------------------------------------


class TestProtocolAttributes:
    def test_deadline_parses_on_every_work_command(self):
        assert parse_request("QUERY DEADLINE=250 SELECT 1;").deadline_ms == 250
        assert parse_request("EXPLAIN DEADLINE=5.5 SELECT 1;").deadline_ms == 5.5
        req = parse_request("SNAPSHOT DEADLINE=100 fleet 5.0")
        assert req.deadline_ms == 100 and req.fleet == "fleet"

    def test_ingest_takes_deadline_and_seq_in_any_order(self):
        line = "INGEST SEQ=c1:7 DEADLINE=80 fleet 0 1e6 0 0 1e6 1 1"
        req = parse_request(line)
        assert req.seq == "c1:7" and req.deadline_ms == 80.0
        assert req.obj == 0

    def test_seq_rejected_outside_ingest(self):
        with pytest.raises(ProtocolError, match="SEQ only applies to INGEST"):
            parse_request("QUERY SEQ=c1:1 SELECT 1;")

    def test_malformed_attributes_are_typed_errors(self):
        with pytest.raises(ProtocolError, match="expected milliseconds"):
            parse_request("QUERY DEADLINE=abc SELECT 1;")
        with pytest.raises(ProtocolError, match="> 0"):
            parse_request("QUERY DEADLINE=0 SELECT 1;")
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_request("INGEST SEQ= fleet 0 0 0 0 1 1 1")

    def test_attribute_shaped_sql_text_is_untouched(self):
        # Only *leading* KEY=value tokens are attributes.
        req = parse_request("QUERY SELECT DEADLINE=9 FROM t;")
        assert req.deadline_ms is None
        assert req.sql == "SELECT DEADLINE=9 FROM t;"

    def test_stats_and_close_still_reject_arguments(self):
        with pytest.raises(ProtocolError):
            parse_request("STATS DEADLINE=5")


# ---------------------------------------------------------------------------
# seq tokens in the WAL record
# ---------------------------------------------------------------------------


class TestSeqInWal:
    def test_seq_round_trips_through_the_record(self):
        req = IngestRequest("fleet", 2, (1.0, 0, 0, 2.0, 1, 1), seq="c9:41")
        scope, payload = encode_record(req)
        rec = WalRecord(rec_type=8, scope=scope, payload=payload)
        assert decode_record(rec) == req

    def test_absent_seq_stays_absent(self):
        req = IngestRequest("fleet", 2, (1.0, 0, 0, 2.0, 1, 1))
        _, payload = encode_record(req)
        assert b"seq" not in payload
        rec = WalRecord(rec_type=8, scope="fleet:fleet", payload=payload)
        assert decode_record(rec).seq == ""


# ---------------------------------------------------------------------------
# executor dedup + deadline checks
# ---------------------------------------------------------------------------


class TestExecutorDedup:
    def test_same_seq_applies_once_and_counts_a_hit(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(2))
        req = IngestRequest("fleet", 0, (1e6, 0, 0, 1e6 + 5, 1, 1), seq="a:1")
        with obs.capture():
            first = ex.apply_units([req])
            second = ex.apply_units([req])
            assert obs.get("ingest.dedup_hits") == 1
        assert first == second
        # exactly one unit landed
        assert len(ex.fleet("fleet")[0].units) == len(_mappings(2)[0].units) + 1

    def test_unseqd_requests_never_dedup(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(2))
        r1 = IngestRequest("fleet", 0, (1e6, 0, 0, 1e6 + 5, 1, 1))
        r2 = IngestRequest("fleet", 0, (2e6, 0, 0, 2e6 + 5, 1, 1))
        ex.apply_units([r1])
        ex.apply_units([r2])
        assert len(ex.fleet("fleet")[0].units) == len(_mappings(2)[0].units) + 2

    def test_replay_repopulates_the_dedup_table(self):
        """Exactly-once across a restart: the WAL carries the token, so
        a retry arriving *after* recovery still deduplicates."""
        from repro.server.ingest import commit, replay_ingest

        wal = Wal()
        try:
            ex = FleetExecutor()
            ex.register_fleet("fleet", _mappings(2))
            req = IngestRequest(
                "fleet", 0, (1e6, 0, 0, 1e6 + 5, 1, 1), seq="boot:1"
            )
            commit(wal, ex, [req])
            baseline = len(ex.fleet("fleet")[0].units)
            # restart: fresh executor, replay the durable prefix
            ex2 = FleetExecutor()
            ex2.register_fleet("fleet", _mappings(2))
            replay_ingest(wal, ex2)
            assert len(ex2.fleet("fleet")[0].units) == baseline
            with obs.capture():
                ex2.apply_units([req])  # the late retry
                assert obs.get("ingest.dedup_hits") == 1
            assert len(ex2.fleet("fleet")[0].units) == baseline
        finally:
            wal.close()

    def test_expired_deadline_aborts_snapshot_rows(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(2))
        dead = Deadline(time.monotonic() - 1.0, 5.0)
        with pytest.raises(DeadlineExceeded):
            ex.snapshot_rows("fleet", 60.0, deadline=dead)

    def test_expired_deadline_aborts_query_sql(self):
        ex = FleetExecutor()
        dead = Deadline(time.monotonic() - 1.0, 5.0)
        with pytest.raises(DeadlineExceeded):
            ex.query_sql("SELECT 1;", deadline=dead)

    def test_query_sql_binds_the_deadline_thread_locally(self):
        ex = FleetExecutor()
        seen = {}
        orig = ex._db

        class Probe:
            def __getattr__(self, name):
                seen["deadline"] = current()
                return getattr(orig, name)

        ex._db = Probe()
        try:
            dl = Deadline.after(10_000.0)
            ex.query_sql("CREATE TABLE probe_t (id string);", deadline=dl)
        finally:
            ex._db = orig
        assert seen["deadline"] is dl
        assert current() is None


# ---------------------------------------------------------------------------
# the wire: deadlines, shedding, dedup, client timeout
# ---------------------------------------------------------------------------


class TestWireResilience:
    @pytest.fixture()
    def server(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(4))
        run = serve_in_thread(ex)
        yield run
        run.stop()

    def test_deadline_expiry_is_a_typed_err_and_counted(self, server):
        with obs.capture():
            with ServerClient(
                "127.0.0.1", server.port, max_retries=0
            ) as c:
                # A deadline this tight cannot survive the dispatch hop.
                with pytest.raises(ServerError) as exc_info:
                    c.request("SNAPSHOT DEADLINE=0.001 fleet 60.0")
                assert exc_info.value.remote_type == "DeadlineExceeded"
                # the session survives the timeout
                assert len(c.snapshot("fleet", 60.0).rows) == 4
            assert obs.get("server.timeouts") >= 1

    def test_generous_deadline_answers_normally(self, server):
        with ServerClient("127.0.0.1", server.port) as c:
            reply = c.snapshot("fleet", 60.0, deadline_ms=60_000.0)
            assert len(reply.rows) == 4
            ok = c.query("CREATE TABLE t1 (id string);", deadline_ms=60_000.0)
            assert ok.fields.get("statements") == "1"

    def test_wire_ingest_retry_same_seq_is_exactly_once(self, server):
        with obs.capture():
            with ServerClient("127.0.0.1", server.port) as c:
                before = int(c.stats().stat("fleet.fleet.units"))
                n1 = c.ingest("fleet", 0, (1e6, 0, 0, 1e6 + 5, 1, 1),
                              seq="wire:1")
                n2 = c.ingest("fleet", 0, (1e6, 0, 0, 1e6 + 5, 1, 1),
                              seq="wire:1")
                assert n1 == n2
                after = int(c.stats().stat("fleet.fleet.units"))
            assert after == before + 1
            assert obs.get("ingest.dedup_hits") == 1

    def test_client_stamps_fresh_seq_tokens(self, server):
        with ServerClient("127.0.0.1", server.port) as c:
            n1 = c.ingest("fleet", 0, (1e6, 0, 0, 1e6 + 5, 1, 1))
            n2 = c.ingest("fleet", 0, (2e6, 0, 0, 2e6 + 5, 1, 1))
            assert n2 == n1 + 1  # distinct tokens, both applied

    def test_overloaded_answer_carries_retry_after_hint(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(4))
        run = serve_in_thread(ex, max_inflight=1)
        release = threading.Event()
        started = threading.Event()
        try:
            def hog():
                # Park one admitted request inside the server by being
                # slow to *read* its big response: issue the request,
                # then stall before consuming it.
                raw = socket.create_connection(("127.0.0.1", run.port))
                try:
                    raw.sendall(b"QUERY SELECT 1;\n")
                    started.set()
                    release.wait(10.0)
                    raw.recv(65536)
                finally:
                    raw.close()

            # the hog occupies the single admission slot via a stalled
            # slow_client write
            faults.arm("server.slow_client", "every:1")
            th = threading.Thread(target=hog)
            th.start()
            started.wait(5.0)
            time.sleep(0.02)  # let the hog's request enter _serve_line
            with obs.capture():
                with ServerClient(
                    "127.0.0.1", run.port, max_retries=0
                ) as c:
                    with pytest.raises(ServerError) as exc_info:
                        c.request("SNAPSHOT fleet 60.0")
                assert exc_info.value.remote_type == "Overloaded"
                hint = exc_info.value.retry_after_ms()
                assert hint is not None and 1 <= hint <= 2000
                assert obs.get("server.shed") >= 1
        finally:
            faults.disarm()
            release.set()
            th.join(timeout=10)
            run.stop()

    def test_shed_requests_are_absorbed_by_client_retries(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(4))
        run = serve_in_thread(ex, max_inflight=1)
        errors = []
        try:
            with obs.capture():
                def worker():
                    try:
                        with ServerClient(
                            "127.0.0.1", run.port, max_retries=10,
                            backoff_base_ms=2.0, backoff_cap_ms=50.0,
                        ) as c:
                            for _ in range(6):
                                assert len(c.snapshot("fleet", 60.0).rows) == 4
                    except Exception as exc:  # pragma: no cover
                        errors.append(repr(exc))

                threads = [threading.Thread(target=worker) for _ in range(6)]
                for th in threads:
                    th.start()
                for th in threads:
                    th.join(timeout=30)
                shed = obs.get("server.shed")
                retries = obs.get("client.retries")
        finally:
            run.stop()
        assert errors == []
        assert shed >= 1, "six concurrent clients never saturated inflight=1"
        assert retries >= 1

    def test_stats_bypasses_admission_control(self):
        ex = FleetExecutor()
        ex.register_fleet("fleet", _mappings(4))
        run = serve_in_thread(ex, max_inflight=1)
        try:
            with ServerClient("127.0.0.1", run.port, max_retries=0) as c:
                assert c.stats().stat("fleet.fleet.objects") == "4"
        finally:
            run.stop()

    def test_client_read_deadline_is_typed(self):
        """A server that accepts but never answers must surface as
        ClientTimeout within the read deadline, not a hang."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        conns = []

        def mute_server():
            conn, _ = listener.accept()
            conns.append(conn)  # accept, read, never answer

        th = threading.Thread(target=mute_server)
        th.start()
        t0 = time.monotonic()
        with obs.capture():
            client = ServerClient(
                "127.0.0.1", port, timeout=5.0,
                request_timeout=0.2, max_retries=0,
            )
            try:
                with pytest.raises(ClientTimeout):
                    client.request("STATS")
            finally:
                client._sock.close()
                client._file.close()
            assert obs.get("client.timeouts") == 1
        assert time.monotonic() - t0 < 4.0
        th.join(timeout=5)
        for conn in conns:
            conn.close()
        listener.close()

    def test_non_idempotent_timeout_does_not_retry(self):
        """Without the idempotent flag a timed-out request must raise,
        never silently re-send."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        received = []

        def mute_server():
            conn, _ = listener.accept()
            received.append(conn.recv(4096))
            release.wait(5.0)
            conn.close()

        release = threading.Event()
        th = threading.Thread(target=mute_server)
        th.start()
        client = ServerClient(
            "127.0.0.1", port, timeout=5.0,
            request_timeout=0.2, max_retries=5,
        )
        try:
            with pytest.raises(ClientTimeout):
                client.request("QUERY SELECT 1;", idempotent=False)
        finally:
            release.set()
            client._sock.close()
            client._file.close()
            th.join(timeout=5)
            listener.close()
        assert received and received[0].count(b"\n") == 1


# ---------------------------------------------------------------------------
# worker-failure recovery (satellite 1: the SIGKILL pool hang)
# ---------------------------------------------------------------------------


def _window_column(n: int):
    return _BUILDERS["upoint"]([_track(i) for i in range(n)])


def _worker_signal_dispositions():
    """Runs inside a pool worker: report SIGTERM/SIGINT dispositions."""
    term = signal.getsignal(signal.SIGTERM)
    intr = signal.getsignal(signal.SIGINT)
    return (
        "default" if term is signal.SIG_DFL else "caught",
        "ignored" if intr is signal.SIG_IGN else "caught",
    )


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="fork start method required",
)
class TestWorkerFailure:
    def test_sigkilled_worker_still_returns_correct_result(self):
        """The regression the bare Pool.map could not survive: SIGKILL
        one fork worker mid-dispatch and the query must still return
        the bit-identical result, with the recovery counted."""
        from repro.vector.kernels import window_intervals_batch

        n = max(config.PARALLEL_MIN_OBJECTS, 1024) + 16
        col = _window_column(n)
        rect = Rect(0.0, 0.0, 1e6, 1e6)
        reference = window_intervals_batch(col, rect, 0.0, 10.0)
        pool.shutdown()
        with obs.capture():
            faults.arm("parallel.worker_kill", "once")
            try:
                result = parallel_window_intervals(
                    col, rect, 0.0, 10.0, workers=4
                )
            finally:
                faults.disarm()
            assert faults.fired("parallel.worker_kill") == 1
            assert obs.get("parallel.worker_deaths") >= 1
            assert obs.get("parallel.chunk_retries") >= 1
            assert obs.get("parallel.fallback.pool_broken") == 0
        for got, want in zip(result, reference):
            assert np.array_equal(got, want)

    def test_second_death_falls_back_in_process(self):
        """Workers dying even after a respawn: the dispatcher gives up
        on the pool (PoolBroken), and the entry point finishes the
        query in-process — still bit-identical."""
        from repro.vector.kernels import window_intervals_batch

        n = max(config.PARALLEL_MIN_OBJECTS, 1024) + 16
        col = _window_column(n)
        rect = Rect(0.0, 0.0, 1e6, 1e6)
        reference = window_intervals_batch(col, rect, 0.0, 10.0)
        pool.shutdown()
        with obs.capture():
            faults.arm("parallel.worker_kill", "every:1")
            try:
                result = parallel_window_intervals(
                    col, rect, 0.0, 10.0, workers=4
                )
            finally:
                faults.disarm()
            assert obs.get("parallel.worker_deaths") >= 2
            assert obs.get("parallel.fallback.pool_broken") == 1
        for got, want in zip(result, reference):
            assert np.array_equal(got, want)

    def test_workers_reset_inherited_signal_handlers(self):
        """Fork workers must drop the parent's Python-level SIGTERM
        handler (the matrix CLIs install drain handlers that merely set
        a flag).  A worker that inherits one can "catch" the SIGTERM of
        ``Pool.terminate()`` while blocked on the task queue and resume
        waiting — unkillable, hanging shutdown's join forever."""
        previous = signal.signal(signal.SIGTERM, lambda *_: None)
        try:
            pool.shutdown()
            p = pool.get_pool(2)
            dispositions = p.apply(_worker_signal_dispositions)
            assert dispositions == ("default", "ignored")
        finally:
            signal.signal(signal.SIGTERM, previous)
            pool.shutdown()

    def test_run_tasks_checks_the_active_deadline(self):
        """An expired deadline aborts the dispatch wait instead of
        riding out a poll loop."""
        n = max(config.PARALLEL_MIN_OBJECTS, 1024) + 16
        col = _window_column(n)
        rect = Rect(0.0, 0.0, 1e6, 1e6)
        pool.shutdown()
        dead = Deadline(time.monotonic() - 1.0, 5.0)
        faults.arm("parallel.worker_kill", "once")
        try:
            with active(dead):
                with pytest.raises(DeadlineExceeded):
                    parallel_window_intervals(
                        col, rect, 0.0, 10.0, workers=4
                    )
        finally:
            faults.disarm()
            pool.shutdown()


# ---------------------------------------------------------------------------
# the chaos matrix
# ---------------------------------------------------------------------------


class TestChaosMatrix:
    def test_quick_matrix_is_green(self):
        from repro.server.chaos import run_chaos_matrix

        entries = run_chaos_matrix(seed=2026, quick=True)
        assert len(entries) == 6
        failures = [e for e in entries if not e.ok]
        assert not failures, "\n".join(
            f"{e.failpoint}: {e.detail}" for e in failures
        )
        assert all(e.fired for e in entries)

    def test_crash_matrix_registry_now_covers_chaos_failpoints(self):
        from repro.storage.crashmatrix import SCENARIOS

        for name in ("server.conn_drop", "server.slow_client",
                     "parallel.worker_kill", "ingest.dup_send",
                     "shard.evict_during_query"):
            assert name in SCENARIOS
