"""F3: Figure 3 — region values with faces and holes; the close() operation.

Rebuilds a figure-3-like region (faces with holes, a face inside another
face's hole), then benchmarks the ``close`` structure builder — segment
soup in, faces/cycles out — at increasing boundary sizes, plus the
validated region constructor.
"""

import math

import pytest

from conftest import report
from repro.spatial.region import Region, close_region
from repro.workloads.regions import regular_polygon


def figure3_region() -> Region:
    """Two faces; the first has two holes, with an island in one of them."""
    ring = lambda cx, cy, r, n=8: [
        (cx + r * math.cos(2 * math.pi * k / n), cy + r * math.sin(2 * math.pi * k / n))
        for k in range(n)
    ]
    face1 = Region.polygon(
        ring(0, 0, 10),
        holes=[ring(-3, 0, 2), ring(4, 0, 3)],
    )
    island = Region.polygon(ring(4, 0, 1))
    face2 = Region.polygon(ring(25, 0, 5))
    return Region(list(face1.faces) + list(island.faces) + list(face2.faces))


def test_fig3_value_shape(benchmark):
    """The figure's region: 3 faces, 2 holes, island nested in a hole."""
    region = benchmark(figure3_region)
    assert len(region.faces) == 3
    hole_counts = sorted(len(f.holes) for f in region.faces)
    assert hole_counts == [0, 0, 2]
    report(
        "Figure 3 region",
        [
            (len(region.faces), sum(hole_counts), f"{region.area():.2f}",
             f"{region.perimeter():.2f}")
        ],
        ("faces", "holes", "area", "perimeter"),
    )


@pytest.mark.parametrize("segments", [32, 128, 512])
def test_fig3_close_scaling(benchmark, segments):
    """The close() operation: soup -> faces/cycles (Section 4.1)."""
    region = Region.polygon(
        [v for v in regular_polygon((0, 0), 50, segments).faces[0].outer.vertices],
        holes=[
            list(regular_polygon((0, 0), 20, max(3, segments // 4)).faces[0].outer.vertices)
        ],
    )
    soup = region.segments()

    def close():
        return close_region(soup)

    rebuilt = benchmark(close)
    assert rebuilt == region


@pytest.mark.parametrize("faces", [2, 8, 32])
def test_fig3_multiface_close(benchmark, faces):
    """close() across many disjoint faces (containment nesting cost)."""
    soup = []
    for k in range(faces):
        soup.extend(
            regular_polygon((k * 30.0, 0.0), 10.0, 8).segments()
        )

    def close():
        return close_region(soup)

    region = benchmark(close)
    assert len(region.faces) == faces
