"""Ablations of the design choices DESIGN.md calls out.

* ordered units array + binary search (Section 4.3) vs a linear scan;
* the cached per-unit bounding cube (Section 4.2) vs recomputation;
* the [DG98] inline threshold: where should arrays leave the tuple;
* R-tree fan-out for the unit index.
"""

import time

import pytest

from conftest import report, translating_mregion, zigzag_moving_point
from repro.index.rtree import RTree3D
from repro.spatial.bbox import Cube
from repro.storage.tuplestore import TupleStore
from repro.workloads.trajectories import random_flights


def test_ablation_binary_search_vs_scan(benchmark):
    """Section 4.3 keeps units ordered so lookup is O(log n)."""
    mp = zigzag_moving_point(4096)
    t_query = 1234.56

    def linear_scan():
        for u in mp.units:
            if u.interval.contains(t_query):
                return u
        return None

    def measure():
        tic = time.perf_counter()
        for _ in range(2000):
            mp.unit_at(t_query)
        binary = (time.perf_counter() - tic) / 2000
        tic = time.perf_counter()
        for _ in range(50):
            linear_scan()
        linear = (time.perf_counter() - tic) / 50
        return binary, linear

    binary, linear = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "Ablation: unit lookup (n=4096)",
        [(f"{binary * 1e6:.2f}", f"{linear * 1e6:.2f}", f"{linear / binary:.0f}x")],
        ("binary search us", "linear scan us", "speedup"),
    )
    assert binary * 5 < linear  # binary search must win decisively


def test_ablation_bounding_cube_cache(benchmark):
    """Section 4.2 stores the cube in the unit record; recomputing it
    costs O(S) per probe and breaks the O(n+m) far-apart bound."""
    mr = translating_mregion(units=8, sides=256)
    unit = mr.units[0]

    def measure():
        unit.bounding_cube()  # warm the cache
        tic = time.perf_counter()
        for _ in range(5000):
            unit.bounding_cube()
        cached = (time.perf_counter() - tic) / 5000
        tic = time.perf_counter()
        for _ in range(200):
            Cube.from_rect(
                unit.bounding_rect(), unit.interval.s, unit.interval.e
            )
        recomputed = (time.perf_counter() - tic) / 200
        return cached, recomputed

    cached, recomputed = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "Ablation: bounding cube (S=256 msegs)",
        [
            (
                f"{cached * 1e6:.3f}",
                f"{recomputed * 1e6:.1f}",
                f"{recomputed / cached:.0f}x",
            )
        ],
        ("cached us", "recomputed us", "ratio"),
    )
    assert cached * 10 < recomputed


@pytest.mark.parametrize("threshold", [64, 1024, 65536])
def test_ablation_inline_threshold(benchmark, threshold):
    """The [DG98] placement knob: tuples bloat when everything inlines,
    page traffic grows when everything pages out."""
    flights = random_flights(12, legs=12, seed=77)

    def store():
        ts = TupleStore(
            [("id", "string"), ("track", "mpoint")], inline_threshold=threshold
        )
        for i, f in enumerate(flights):
            ts.append([f"F{i}", f])
        # Read everything back: pays the page I/O for external arrays.
        for i in range(len(flights)):
            ts.fetch(i)
        return ts

    ts = benchmark(store)
    stats = ts.storage_stats()
    report(
        f"Ablation: inline threshold {threshold}",
        [
            (
                threshold,
                stats["tuple_bytes"],
                stats["inline_arrays"],
                stats["external_arrays"],
                stats["physical_reads"],
            )
        ],
        ("threshold", "tuple bytes", "inline", "paged", "page reads"),
    )


@pytest.mark.parametrize("fanout", [4, 8, 32])
def test_ablation_rtree_fanout(benchmark, fanout):
    """R-tree fan-out: small nodes split constantly, huge nodes scan."""
    flights = random_flights(40, legs=8, seed=31)
    cubes = []
    for i, f in enumerate(flights):
        for u in f.units:
            cubes.append((u.bounding_cube(), i))
    probe = Cube(2000, 2000, 0, 6000, 6000, 800)

    def build_and_search():
        tree = RTree3D(max_entries=fanout)
        for c, i in cubes:
            tree.insert(c, i)
        hits = set()
        for _ in range(50):
            hits = set(tree.search(probe))
        return tree, hits

    tree, hits = benchmark(build_and_search)
    # Correctness is fan-out independent.
    expected = {i for c, i in cubes if c.intersects(probe)}
    assert hits == expected
    report(
        f"Ablation: R-tree fanout {fanout}",
        [(fanout, tree.height(), tree.node_count(), len(hits))],
        ("fanout", "height", "nodes", "hits"),
    )
