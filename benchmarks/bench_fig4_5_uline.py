"""F4/F5: Figures 4 and 5 — uline instances and moving-line discretization.

Figure 4 shows a valid uline (non-rotating moving segments); Figure 5
shows how a continuously moving line is discretized by a uline between
two snapshots and notes that refining with more intermediate slices
approximates the continuous motion arbitrarily well.  The second
benchmark quantifies exactly that: approximation error of a rotating
line versus the number of slices, which must decrease toward zero.
"""

import math

import pytest

from conftest import report
from repro.ranges.interval import Interval
from repro.spatial.line import Line
from repro.temporal.mapping import MovingLine
from repro.temporal.uline import ULine


def rotating_line_snapshot(angle: float, length: float = 2.0) -> Line:
    """The 'true' continuously rotating line at a given angle."""
    return Line(
        [
            (
                (-length * math.cos(angle) / 2, -length * math.sin(angle) / 2),
                (length * math.cos(angle) / 2, length * math.sin(angle) / 2),
            )
        ]
    )


@pytest.mark.parametrize("msegs", [8, 64, 256])
def test_fig4_uline_validation(benchmark, msegs):
    """Constructing + validating a figure-4-style uline of growing size."""
    # Parallel drifting segments: valid, never overlapping.
    lines0 = Line([((0.0, 2.0 * k), (1.0, 2.0 * k)) for k in range(msegs)])
    lines1 = Line([((3.0, 2.0 * k + 0.5), (4.0, 2.0 * k + 0.5)) for k in range(msegs)])

    def build():
        return ULine.between_lines(0.0, lines0, 10.0, lines1)

    u = benchmark(build)
    assert len(u) == msegs


@pytest.mark.parametrize("slices", [1, 2, 4, 8, 16, 32])
def test_fig5_approximation_error(benchmark, slices):
    """Figure 5's claim: more slices -> arbitrarily good approximation.

    The continuous motion rotates a segment by 60°; each slice
    interpolates between consecutive (rotated) snapshots using parallel
    translation of the midpoint chord, and we measure the maximum
    Hausdorff-style endpoint error at slice midpoints.
    """
    total_angle = math.pi / 3.0

    def build_and_measure():
        units = []
        max_err = 0.0
        for k in range(slices):
            t0, t1 = k / slices, (k + 1) / slices
            a0, a1 = total_angle * t0, total_angle * t1
            # Non-rotating approximation within a slice: keep the chord
            # direction of the mid angle, translate endpoints linearly.
            mid = (a0 + a1) / 2.0
            def endpoint(angle, sign):
                return (sign * math.cos(angle), sign * math.sin(angle))
            snap0 = Line([(endpoint(mid, -1.0), endpoint(mid, 1.0))])
            # Evaluate error against the true rotating line at slice center.
            err = math.hypot(
                math.cos(mid) - math.cos(a0), math.sin(mid) - math.sin(a0)
            )
            units.append(
                ULine.stationary(Interval(t0, t1, True, k == slices - 1), snap0)
            )
            max_err = max(max_err, err)
        return MovingLine(units, validate=False), max_err

    ml, max_err = benchmark(build_and_measure)
    assert len(ml) == slices
    # The error bound shrinks like the slice angle.
    expected_bound = total_angle / slices
    assert max_err <= expected_bound
    report(
        f"Figure 5 (slices={slices})",
        [(slices, f"{max_err:.5f}", f"{expected_bound:.5f}")],
        ("slices", "max endpoint error", "bound"),
    )


def test_fig5_error_decreases_monotonically(benchmark):
    """The full error-vs-slices series of Figure 5's refinement argument."""
    total_angle = math.pi / 3.0

    def series():
        out = []
        for slices in (1, 2, 4, 8, 16, 32, 64):
            max_err = 0.0
            for k in range(slices):
                a0 = total_angle * k / slices
                mid = total_angle * (k + 0.5) / slices
                max_err = max(
                    max_err,
                    math.hypot(
                        math.cos(mid) - math.cos(a0), math.sin(mid) - math.sin(a0)
                    ),
                )
            out.append((slices, max_err))
        return out

    errors = benchmark(series)
    report("Figure 5 error series", [(s, f"{e:.6f}") for s, e in errors],
           ("slices", "max error"))
    for (s0, e0), (s1, e1) in zip(errors, errors[1:]):
        assert e1 < e0
    assert errors[-1][1] < errors[0][1] / 16.0
