"""F7: Figure 7 — the mapping data structure with shared subarrays.

Packs mappings of variable-size units into the root-record / units-array
/ shared-subarray layout of the figure, verifies the structural claims
(one units array ordered by interval, one shared element array per
subarray of the unit type, subarray ranges tiling the shared arrays),
and benchmarks (de)serialization throughput plus the inline-vs-paged
FLOB placement of the tuple store.
"""

import struct

import pytest

from conftest import report, translating_mregion, zigzag_moving_point
from repro.ranges.interval import Interval
from repro.storage.records import StoredValue, pack_value, unpack_value
from repro.storage.tuplestore import TupleStore
from repro.temporal.mapping import MovingPoints
from repro.temporal.mseg import MPoint
from repro.temporal.upoints import UPoints


def build_mpoints(units: int, points_per_unit: int) -> MovingPoints:
    out = []
    for k in range(units):
        motions = [
            MPoint(float(j), 0.1 * (k % 3 + 1), float(k), 0.2)
            for j in range(points_per_unit)
        ]
        out.append(
            UPoints(Interval(float(k), float(k + 1), True, False), motions)
        )
    return MovingPoints(out)


def test_fig7_layout_structure(benchmark):
    """The figure's structure: units array + one shared subarray."""
    m = build_mpoints(units=3, points_per_unit=4)

    def pack():
        return pack_value("mpoints", m)

    stored = benchmark(pack)
    units_arr, elems = stored.arrays
    assert len(units_arr) == 3
    assert len(elems) == 12  # all units share one MPoint array
    # Subarray ranges tile the shared array in unit order (Figure 7).
    ranges = [(rec[4], rec[5]) for rec in units_arr]
    assert ranges == [(0, 4), (4, 8), (8, 12)]
    starts = [rec[0] for rec in units_arr]
    assert starts == sorted(starts)
    report(
        "Figure 7 layout (mapping(upoints), 3 units x 4 points)",
        [
            ("root record", len(stored.root)),
            ("units array", units_arr.nbytes),
            ("shared MPoint array", elems.nbytes),
        ],
        ("component", "bytes"),
    )
    assert unpack_value(stored) == m


@pytest.mark.parametrize("units", [16, 128, 1024])
def test_fig7_mpoint_serialization_scaling(benchmark, units):
    """Pack+flatten+unpack throughput for mapping(upoint)."""
    m = zigzag_moving_point(units)

    def roundtrip():
        stored = pack_value("mpoint", m)
        return unpack_value(StoredValue.from_bytes(stored.to_bytes()))

    back = benchmark(roundtrip)
    assert back == m


@pytest.mark.parametrize("units", [4, 32])
def test_fig7_mregion_serialization_scaling(benchmark, units):
    """Pack+unpack throughput for mapping(uregion) with its 3 subarrays."""
    m = translating_mregion(units=units, sides=12)

    def roundtrip():
        return unpack_value(pack_value("mregion", m))

    back = benchmark(roundtrip)
    assert back == m
    stored = pack_value("mregion", m)
    assert len(stored.arrays) == 4  # units + msegments + mcycles + mfaces


def test_fig7_inline_vs_paged_placement(benchmark):
    """The [DG98] placement decision: small arrays inline, large ones paged."""
    short = zigzag_moving_point(3)
    long = zigzag_moving_point(400)

    def store_both():
        ts = TupleStore(
            [("name", "string"), ("track", "mpoint")], inline_threshold=512
        )
        ts.append(["short", short])
        ts.append(["long", long])
        return ts

    ts = benchmark(store_both)
    stats = ts.storage_stats()
    assert stats["inline_arrays"] == 1
    assert stats["external_arrays"] == 1
    assert ts.fetch(0)[1] == short
    assert ts.fetch(1)[1] == long
    report(
        "Figure 7 / DG98 placement",
        [(stats["inline_arrays"], stats["external_arrays"],
          stats["physical_writes"])],
        ("inline arrays", "paged arrays", "page writes"),
    )
