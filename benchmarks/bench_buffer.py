"""V5 satellite: CLOCK (second-chance) buffer pool hit rates.

The pool's replacement policy is CLOCK: reference bits plus a sweeping
hand instead of strict LRU's move-to-end per hit.  This bench measures
what that buys on the two canonical access patterns:

- a *looping scan* over more pages than fit (LRU's worst case: every
  lap evicts exactly the page about to be needed), and
- a *hot/cold mix*, where a small working set is re-referenced while a
  big scan streams past — second chances keep the hot pages resident.

Runs as pytest and as a script: ``python benchmarks/bench_buffer.py``.
"""

import json

from repro.storage.buffer import BufferPool
from repro.storage.pages import PageFile


def make_pool(pages: int, capacity: int):
    pf = PageFile()
    pool = BufferPool(pf, capacity=capacity)
    page_nos = [pool.new_page() for _ in range(pages)]
    return pool, page_nos


def touch(pool, page_no):
    pool.pin(page_no)
    pool.unpin(page_no)


def looping_scan(pages: int, capacity: int, laps: int = 10) -> dict:
    """Hit rate of ``laps`` sequential sweeps over ``pages`` pages."""
    pool, page_nos = make_pool(pages, capacity)
    for p in page_nos:  # first lap: all compulsory misses
        touch(pool, p)
    pool.hits = pool.misses = 0
    for _ in range(laps):
        for p in page_nos:
            touch(pool, p)
    total = pool.hits + pool.misses
    return {
        "pages": pages,
        "capacity": capacity,
        "laps": laps,
        "hits": pool.hits,
        "misses": pool.misses,
        "hit_rate": pool.hits / total,
    }


def hot_cold_mix(
    cold_pages: int = 96, capacity: int = 32, hot_pages: int = 8,
    laps: int = 10,
) -> dict:
    """A hot set touched between every cold access of a looping scan."""
    pool, page_nos = make_pool(cold_pages + hot_pages, capacity)
    hot, cold = page_nos[:hot_pages], page_nos[hot_pages:]
    for p in page_nos:
        touch(pool, p)
    pool.hits = pool.misses = 0
    hot_hits = hot_touches = 0
    i = 0
    for _ in range(laps):
        for p in cold:
            touch(pool, p)
            h = hot[i % len(hot)]
            i += 1
            before = pool.hits
            touch(pool, h)
            hot_hits += pool.hits - before
            hot_touches += 1
    total = pool.hits + pool.misses
    return {
        "cold_pages": cold_pages,
        "hot_pages": hot_pages,
        "capacity": capacity,
        "hit_rate": pool.hits / total,
        "hot_hit_rate": hot_hits / hot_touches,
    }


def run_all() -> dict:
    return {
        "fits": looping_scan(pages=48, capacity=64),
        "tight": looping_scan(pages=72, capacity=64),
        "large": looping_scan(pages=128, capacity=64),
        "hot_cold": hot_cold_mix(),
    }


# -- pytest entry points ------------------------------------------------------


def test_v5_looping_scan_fits():
    """A loop that fits stays resident: every post-warmup touch hits."""
    stats = looping_scan(pages=48, capacity=64)
    assert stats["hit_rate"] == 1.0, stats


def test_v5_hot_pages_survive_scan():
    """Second chances keep a re-referenced hot set resident while a
    larger-than-pool cold scan streams past."""
    stats = hot_cold_mix()
    assert stats["hot_hit_rate"] >= 0.9, stats


def test_v5_counters_stay_consistent():
    stats = looping_scan(pages=72, capacity=64, laps=3)
    assert stats["hits"] + stats["misses"] == 72 * 3
    assert 0.0 <= stats["hit_rate"] <= 1.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write results to this file")
    args = parser.parse_args()

    results = run_all()
    for name in ("fits", "tight", "large"):
        s = results[name]
        print(
            f"loop {s['pages']:4d} pages / cap {s['capacity']}: "
            f"hit rate {s['hit_rate']:.3f} "
            f"({s['hits']} hits, {s['misses']} misses)"
        )
    h = results["hot_cold"]
    print(
        f"hot/cold  {h['hot_pages']} hot + {h['cold_pages']} cold / cap "
        f"{h['capacity']}: overall {h['hit_rate']:.3f}, "
        f"hot {h['hot_hit_rate']:.3f}"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(results, f, indent=2)
        print(f"wrote {args.json}")
