"""V10: sharded fleets under a memory budget (repro.shard).

Claim under test: hash-partitioned shards with per-shard column stores,
shard-level bbox pruning, and candidate sub-column gather answer a
window query over 1M objects / 4M units in under 100 ms *cold* — with a
resident-byte budget smaller than the fleet's total column bytes, so
the CLOCK policy is actively evicting shards throughout — while
returning results bit-identical to the unsharded vector kernel
(mismatch count asserted at zero, eviction churn and the
``shard.resident_bytes`` high-water counter-asserted against the
budget).

Runs both as pytest (a quick 2-shard equivalence ``smoke`` is wired
into scripts/check.sh) and as a script producing the scaling curve::

    python benchmarks/bench_shard.py --json BENCH_shard.json
"""

import argparse
import json
import random
import sys
import tempfile
import time

import numpy as np

from repro import obs
from repro.shard import ShardManager, ShardedFleet, sharded_window_intervals
from repro.spatial.bbox import Rect
from repro.temporal.mapping import MovingPoint
from repro.vector.cache import clear_cache
from repro.vector.store import _BUILDERS

FLEET_SIZE = 1_000_000
LEGS = 4  # units per object: 1M objects x 4 legs = 4M units
SHARDS = 16
#: Budget as a fraction of the fleet's total upoint bytes — small
#: enough that a full scatter cannot hold every shard resident.
BUDGET_DIVISOR = 4
#: The query window: selective in space and time, so the candidate
#: gather (not the fleet size) sets the kernel cost.
RECT = Rect(4000.0, 4000.0, 4500.0, 4500.0)
WINDOW = (20.0, 25.0)
BUDGET_MS = 100.0


def build_fleet(count: int = FLEET_SIZE, legs: int = LEGS, seed: int = 2000):
    """Deterministic local trajectories over a 10k x 10k world.

    Short ±50 legs keep per-object bounding boxes tight, the regime the
    Section-4 sliced representation targets (many objects, each small
    against the observed space).
    """
    rng = random.Random(seed)
    fleet = []
    for _ in range(count):
        t = rng.uniform(0.0, 50.0)
        x, y = rng.uniform(0.0, 10000.0), rng.uniform(0.0, 10000.0)
        wps = [(t, (x, y))]
        for _leg in range(legs):
            t += rng.uniform(5.0, 30.0)
            x += rng.uniform(-50.0, 50.0)
            y += rng.uniform(-50.0, 50.0)
            wps.append((t, (x, y)))
        fleet.append(MovingPoint.from_waypoints(wps))
    return fleet


def _mismatches(got, want) -> int:
    """Arrays that differ bit for bit (NaN-exact, dtype-exact)."""
    bad = 0
    for g, w in zip(got, want):
        if g.dtype != w.dtype or g.tobytes() != w.tobytes():
            bad += 1
    return bad


def measure_sharded(mappings, shards: int = SHARDS, root=None) -> dict:
    """Stage per-shard stores, then time cold and warm budgeted scatters.

    Cold means: nothing resident (``evict_all`` + process cache clear),
    columns mapped from the per-shard mmap stores during the query, with
    the budget forcing evictions as the scatter sweeps the shards.
    """
    if root is None:
        root = tempfile.mkdtemp(prefix="bench_shard_")
    fleet = ShardedFleet(mappings, shards)
    staging = ShardManager(fleet, root=root)
    tic = time.perf_counter()
    staging.persist(kinds=("upoint", "bbox"))
    persist_s = time.perf_counter() - tic
    total_bytes = staging.total_column_bytes()
    budget = total_bytes // BUDGET_DIVISOR
    manager = ShardManager(fleet, root=root, budget=budget)

    rect, (t0, t1) = RECT, WINDOW
    obs.reset()
    obs.enable()
    try:
        manager.evict_all()
        clear_cache()
        tic = time.perf_counter()
        got = sharded_window_intervals(manager, rect, t0, t1)
        cold_s = time.perf_counter() - tic
        tic = time.perf_counter()
        warm = sharded_window_intervals(manager, rect, t0, t1)
        warm_s = time.perf_counter() - tic
        evictions = obs.get("shard.evictions")
        pruned = obs.get("shard.pruned")
        resident_high = obs.snapshot()["gauges"].get(
            "shard.resident_bytes", 0.0
        )
    finally:
        obs.disable()

    reference = window_intervals_batch_reference(mappings, rect, t0, t1)
    mismatches = _mismatches(got, reference) + _mismatches(warm, reference)
    return {
        "objects": len(mappings),
        "units": int(sum(len(m.units) for m in mappings)),
        "shards": shards,
        "total_column_bytes": int(total_bytes),
        "memory_budget_bytes": int(budget),
        "resident_bytes_high_water": float(resident_high),
        "persist_s": persist_s,
        "cold_window_ms": cold_s * 1000.0,
        "warm_window_ms": warm_s * 1000.0,
        "rows": int(len(got[0])),
        "evictions": int(evictions),
        "shards_pruned": int(pruned),
        "mismatches": int(mismatches),
    }


def window_intervals_batch_reference(mappings, rect, t0, t1):
    """The unsharded kernel over one flat column (the oracle)."""
    from repro.vector.kernels import window_intervals_batch

    return window_intervals_batch(_BUILDERS["upoint"](mappings), rect, t0, t1)


def assert_result(result: dict) -> None:
    assert result["mismatches"] == 0, (
        f"{result['mismatches']} gathered arrays differ from the "
        "unsharded kernel"
    )
    assert result["rows"] > 0, "window query matched nothing; rect too small"
    assert result["memory_budget_bytes"] < result["total_column_bytes"], (
        "budget must be smaller than the fleet's column bytes"
    )
    assert (
        result["resident_bytes_high_water"] <= result["memory_budget_bytes"]
    ), (
        f"resident high-water {result['resident_bytes_high_water']} "
        f"exceeded the budget {result['memory_budget_bytes']}"
    )
    assert result["evictions"] >= 1, (
        "a budget below the column total must evict at least once"
    )


# ---------------------------------------------------------------------------
# pytest entry points (scripts/check.sh runs -k smoke)
# ---------------------------------------------------------------------------


def test_v10_smoke_shard_bench():
    """2 shards, 2k objects, tiny budget: the full measurement protocol
    (stage -> evict -> cold scatter -> counters) with zero mismatches."""
    mappings = build_fleet(2_000, seed=2000)
    result = measure_sharded(mappings, shards=2)
    assert_result(result)


def test_v10_counter_assertions():
    """Budgeted residency really churns: evictions and the high-water
    gauge move, and pruning rules shards out without mapping them."""
    mappings = build_fleet(4_000, seed=2001)
    result = measure_sharded(mappings, shards=8)
    assert_result(result)
    assert result["resident_bytes_high_water"] > 0.0


# ---------------------------------------------------------------------------
# script entry point
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write results to this file")
    parser.add_argument("--objects", type=int, default=FLEET_SIZE)
    parser.add_argument("--shards", type=int, default=SHARDS)
    args = parser.parse_args()

    print(f"building {args.objects} objects x {LEGS} legs ...", flush=True)
    tic = time.perf_counter()
    mappings = build_fleet(args.objects)
    print(f"  built in {time.perf_counter() - tic:.1f}s", flush=True)

    scales = sorted({args.objects // 10, 3 * args.objects // 10, args.objects})
    curve = []
    for n in scales:
        print(f"measuring {n} objects / {n * LEGS} units ...", flush=True)
        result = measure_sharded(mappings[:n], shards=args.shards)
        assert_result(result)
        print(
            f"  cold {result['cold_window_ms']:.1f} ms, "
            f"warm {result['warm_window_ms']:.1f} ms, "
            f"{result['rows']} rows, {result['evictions']} evictions, "
            f"budget {result['memory_budget_bytes'] / 1e6:.0f}MB of "
            f"{result['total_column_bytes'] / 1e6:.0f}MB",
            flush=True,
        )
        curve.append(result)

    final = curve[-1]
    ok = final["cold_window_ms"] < BUDGET_MS
    doc = {
        "benchmark": "sharded scatter-gather under memory budget",
        "claim_cold_window_ms_under": BUDGET_MS,
        "claim_met": bool(ok),
        "scaling": curve,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if not ok:
        print(
            f"FAIL: cold window query took {final['cold_window_ms']:.1f} ms "
            f"(budget {BUDGET_MS} ms)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: {final['objects']} objects / {final['units']} units cold in "
        f"{final['cold_window_ms']:.1f} ms, 0 mismatches"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
