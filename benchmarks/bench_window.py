"""Window queries: filter-and-refine vs naive exact refinement.

Not a figure of the paper, but the query pattern its index discussion
([TSPM98], bounding cubes of Section 4.2) exists for.  The refinement
step is exact (closed-form interval intersection per unit), so both
plans return identical results; the R-tree filter's advantage grows
with collection size and window selectivity.
"""

import time

import pytest

from conftest import report
from repro.spatial.bbox import Rect
from repro.ops.window import WindowQueryEngine
from repro.workloads.trajectories import random_flights


def build_engine(n: int, seed: int = 9) -> WindowQueryEngine:
    engine = WindowQueryEngine()
    for i, f in enumerate(random_flights(n, legs=6, seed=seed)):
        engine.add(i, f)
    return engine


WINDOW = Rect(2000.0, 2000.0, 2800.0, 2800.0)
T0, T1 = 100.0, 350.0


@pytest.mark.parametrize("n", [25, 100, 400])
def test_window_filtered(benchmark, n):
    engine = build_engine(n)

    def run():
        return engine.query(WINDOW, T0, T1)

    results = benchmark(run)
    assert results == engine.query_naive(WINDOW, T0, T1)


@pytest.mark.parametrize("n", [25, 100])
def test_window_naive(benchmark, n):
    engine = build_engine(n)

    def run():
        return engine.query_naive(WINDOW, T0, T1)

    benchmark(run)


def test_window_ablation_shape(benchmark):
    """Filtered vs naive across collection sizes."""

    def measure():
        rows = []
        for n in (50, 200, 800):
            engine = build_engine(n)
            tic = time.perf_counter()
            for _ in range(5):
                hits = engine.query(WINDOW, T0, T1)
            filtered = (time.perf_counter() - tic) / 5
            tic = time.perf_counter()
            for _ in range(5):
                naive = engine.query_naive(WINDOW, T0, T1)
            plain = (time.perf_counter() - tic) / 5
            assert hits == naive
            rows.append((n, len(hits), filtered, plain))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "Window query: R-tree filter vs naive",
        [
            (n, hits, f"{f * 1000:.2f}", f"{p * 1000:.2f}", f"{p / f:.1f}x")
            for n, hits, f, p in rows
        ],
        ("objects", "hits", "filtered ms", "naive ms", "speedup"),
    )
    # The filter's advantage must grow with collection size.
    small_ratio = rows[0][3] / rows[0][2]
    large_ratio = rows[-1][3] / rows[-1][2]
    assert large_ratio > small_ratio * 0.8  # monotone-ish, generous slack
