"""F1: Figure 1 — the sliced representation of moving real / moving points.

Rebuilds the figure's two values (a moving real decomposed into simple-
function slices; a moving points value whose slices hold linearly moving
point sets), prints the slice tables, and benchmarks construction plus
instant evaluation over the sliced form.
"""

import pytest

from conftest import report
from repro.ranges.interval import Interval
from repro.temporal.mapping import MovingPoints, MovingReal
from repro.temporal.mseg import MPoint
from repro.temporal.upoints import UPoints
from repro.temporal.ureal import UReal


def build_figure1_mreal() -> MovingReal:
    """A moving real in three slices: rise, plateau via parabola, decay."""
    return MovingReal(
        [
            UReal(Interval(0.0, 4.0, True, False), 0.0, 0.5, 1.0),       # linear
            UReal(Interval(4.0, 8.0, True, False), -0.25, 3.0, -6.0),    # parabola
            UReal(Interval(8.0, 12.0, True, True), 0.0, -0.5, 6.0),      # decay
        ]
    )


def build_figure1_mpoints() -> MovingPoints:
    """A moving points value: two points, then three, with a gap between."""
    return MovingPoints(
        [
            UPoints(
                Interval(0.0, 5.0, True, True),
                [MPoint(0, 1, 0, 0), MPoint(0, 1, 3, 0)],
            ),
            UPoints(
                Interval(7.0, 12.0, True, True),
                [MPoint(7, 0.5, 0, 0.5), MPoint(0, 1, 3, 0), MPoint(-7, 2, -7, 1)],
            ),
        ]
    )


def test_fig1_sliced_mreal(benchmark):
    """Slice table of the moving real and timed evaluation across slices."""
    m = build_figure1_mreal()
    times = [0.5 * k for k in range(25)]

    def evaluate_everywhere():
        return [m.value_at(t) for t in times]

    values = benchmark(evaluate_everywhere)
    rows = [
        (u.interval.pretty(), f"({u.coefficients[0]:g},{u.coefficients[1]:g},"
         f"{u.coefficients[2]:g},{u.coefficients[3]})")
        for u in m.units
    ]
    report("Figure 1a: moving real slices", rows, ("interval", "(a,b,c,r)"))
    # Continuity across the slice boundaries of the figure.
    assert m.value_at(3.999999).value == pytest.approx(3.0, abs=1e-4)
    assert m.value_at(4.0).value == pytest.approx(2.0)  # jump is allowed
    assert sum(v is not None for v in values) == len(
        [t for t in times if m.present(t)]
    )


def test_fig1_sliced_mpoints(benchmark):
    """Slice table of the moving points value and timed evaluation."""
    m = build_figure1_mpoints()

    def evaluate():
        return [m.value_at(t) for t in (0.0, 2.5, 5.0, 6.0, 7.0, 9.5, 12.0)]

    values = benchmark(evaluate)
    rows = [(u.interval.pretty(), len(u)) for u in m.units]
    report("Figure 1b: moving points slices", rows, ("interval", "#points"))
    assert len(values[1]) == 2  # two points in the first slice
    assert values[3] is None  # the gap
    assert len(values[5]) == 3  # three points in the second slice


def test_fig1_construction_scaling(benchmark):
    """Cost of assembling a mapping from many slices (sorting + invariants)."""
    units = [
        UReal(Interval(float(k), float(k + 1), True, False), 0.0, 1.0, float(k))
        for k in range(500)
    ]

    def build():
        return MovingReal(units)

    m = benchmark(build)
    assert len(m) == 500
