"""F8: Figure 8 — the refinement partition of two unit sequences.

The parallel scan that underlies every binary operation on sliced
values.  Verifies the figure's property (the partition cuts at every
interval boundary of either input and is the coarsest such partition)
and demonstrates the O(n + m) scaling: doubling both inputs roughly
doubles the running time.
"""

import time

import pytest

from conftest import report, zigzag_moving_point
from repro.temporal.refinement import refinement_partition


@pytest.mark.parametrize("n", [100, 400, 1600])
def test_fig8_scan_scaling(benchmark, n):
    """O(n + m) parallel scan at growing input sizes."""
    a = zigzag_moving_point(n)
    b = zigzag_moving_point(n, t0=0.5)  # offset: every unit straddles two

    def scan():
        return list(refinement_partition(a.units, b.units))

    pieces = benchmark(scan)
    # Coarsest refinement: piece count is linear in n + m.
    assert n <= len(pieces) <= 3 * (2 * n + 2)


def test_fig8_partition_properties(benchmark):
    """The partition covers both deftimes exactly and never splits needlessly."""
    a = zigzag_moving_point(50)
    b = zigzag_moving_point(30, t0=20.25)

    def scan():
        return list(refinement_partition(a.units, b.units))

    pieces = benchmark(scan)
    # Exact coverage of the union of deftimes.
    from repro.ranges.rangeset import RangeSet

    covered = RangeSet.normalized([p[0] for p in pieces])
    assert covered == a.deftime().union(b.deftime())
    # Within a piece the covering units are constant, and consecutive
    # pieces differ in at least one side (coarsest property).
    for (iv1, ua1, ub1), (iv2, ua2, ub2) in zip(pieces, pieces[1:]):
        if iv1.adjacent(iv2):
            assert ua1 is not ua2 or ub1 is not ub2
    report(
        "Figure 8 refinement",
        [(len(a.units), len(b.units), len(pieces))],
        ("units a", "units b", "refinement pieces"),
    )


def test_fig8_linear_growth_shape(benchmark):
    """Empirical shape check: time per piece stays ~constant as n grows."""

    def measure():
        rates = []
        for n in (200, 800, 3200):
            a = zigzag_moving_point(n)
            b = zigzag_moving_point(n, t0=0.5)
            tic = time.perf_counter()
            pieces = list(refinement_partition(a.units, b.units))
            elapsed = time.perf_counter() - tic
            rates.append((n, elapsed, elapsed / len(pieces)))
        return rates

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "Figure 8 scaling",
        [(n, f"{t * 1000:.2f}", f"{per * 1e6:.2f}") for n, t, per in rates],
        ("n=m", "total ms", "us/piece"),
    )
    # Per-piece cost must not grow superlinearly: allow generous slack.
    assert rates[-1][2] < rates[0][2] * 4.0
