"""Shared builders for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a table, a
figure, or a Section-5 complexity claim); the builders here produce the
deterministic workloads they run on.
"""

from __future__ import annotations

import math
import random
from typing import List

import pytest

from repro.ranges.interval import Interval
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.temporal.uregion import URegion
from repro.workloads.regions import regular_polygon
from repro.workloads.trajectories import FlightGenerator


def zigzag_moving_point(units: int, t0: float = 0.0, speed: float = 1.0) -> MovingPoint:
    """A moving point with exactly ``units`` units (alternating headings)."""
    waypoints = [(t0, (0.0, 0.0))]
    x = y = 0.0
    t = t0
    for k in range(units):
        t += 1.0
        x += speed
        y += speed if k % 2 == 0 else -speed
        waypoints.append((t, (x, y)))
    return MovingPoint.from_waypoints(waypoints)


def translating_mregion(
    units: int, sides: int = 4, t0: float = 0.0, radius: float = 1.0
) -> MovingRegion:
    """A moving region with ``units`` units and ``sides`` msegs per cycle.

    The polygon drifts with alternating headings so that adjacent unit
    functions always differ (the mapping minimality invariant).
    """
    out: List[URegion] = []
    cx, cy = 0.0, 0.0
    t = t0
    for k in range(units):
        heading = (k % 4) * math.pi / 2.0 + 0.3
        nx = cx + math.cos(heading)
        ny = cy + math.sin(heading)
        r0 = regular_polygon((cx, cy), radius, sides)
        r1 = regular_polygon((nx, ny), radius, sides)
        u = URegion.between_regions(t, r0, t + 1.0, r1, validate="none")
        if k < units - 1:
            u = u.with_interval(Interval(t, t + 1.0, True, False))
        out.append(u)
        cx, cy = nx, ny
        t += 1.0
    return MovingRegion(out, validate=False)


def big_region(segments: int, radius: float = 100.0) -> Region:
    """A one-face region whose boundary has ``segments`` segments."""
    return regular_polygon((0.0, 0.0), radius, sides=segments)


def flights_relation(count: int, legs: int = 6, seed: int = 2000, stagger: float = 0.0):
    """The planes relation of Section 2, at a configurable size.

    ``stagger`` delays each departure — with large values flights stop
    overlapping in time, the workload shape where the spatio-temporal
    index filter of the Q2 ablation actually prunes.
    """
    from repro.db import Database

    gen = FlightGenerator(seed=seed)
    db = Database("bench")
    planes = db.create_relation(
        "planes", [("airline", "string"), ("id", "string"), ("flight", "mpoint")]
    )
    airlines = ["Lufthansa", "AirFrance", "KLM"]
    for i in range(count):
        planes.insert(
            [airlines[i % 3], f"F{i:04d}",
             gen.flight(legs=legs, start_time=i * stagger)]
        )
    return db


def report(title: str, rows: List[tuple], header: tuple) -> None:
    """Print a small results table (the 'rows the paper reports')."""
    print(f"\n== {title} ==")
    widths = [max(len(str(h)), 12) for h in header]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print(
            "  "
            + "  ".join(
                (f"{v:.6g}" if isinstance(v, float) else str(v)).ljust(w)
                for v, w in zip(row, widths)
            )
        )
