"""V1: columnar kernels vs scalar loops at fleet scale (repro.vector).

Claim under test: once a fleet's units live in a Structure-of-Arrays
column (the Section-4 root-record + database-array layout, transposed),
a whole-fleet ``atinstant`` is one vectorized binary search plus one
fused evaluation — more than an order of magnitude faster than the
per-object scalar loop, while returning the same answers bit for bit.

Runs both as pytest (equivalence + speedup asserted together) and as a
script: ``python benchmarks/bench_vector.py --json BENCH_vector.json``.
"""

import json
import random
import time

from repro.spatial.bbox import Cube
from repro.temporal.mapping import MovingPoint
from repro.vector.cache import Fleet, clear_cache, column_for
from repro.vector.columns import BBoxColumn, UPointColumn
from repro.vector.kernels import atinstant_batch, bbox_filter_batch

FLEET_SIZE = 10_000
LEGS = 4


def build_fleet(count: int = FLEET_SIZE, legs: int = LEGS, seed: int = 2000):
    """A deterministic fleet of ``count`` simple flights."""
    rng = random.Random(seed)
    fleet = []
    for _ in range(count):
        t = rng.uniform(0.0, 50.0)
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        wps = [(t, (x, y))]
        for _leg in range(legs):
            t += rng.uniform(5.0, 30.0)
            x += rng.uniform(-200, 200)
            y += rng.uniform(-200, 200)
            wps.append((t, (x, y)))
        fleet.append(MovingPoint.from_waypoints(wps))
    return fleet


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        tic = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tic)
    return best


def measure_atinstant(fleet, t: float) -> dict:
    """Time scalar vs vector atinstant AND assert equivalence, same run.

    The vector side is broken down into its cost components:

    - ``build_s``    — constructing the SoA column from the fleet,
    - ``kernel_s``   — the batch kernel alone on a resident column,
    - ``end_to_end_cold_s`` — build + kernel, as a one-shot query pays,
    - ``end_to_end_warm_s`` — kernel over the column cache
      (:mod:`repro.vector.cache`), as every query after the first pays.
    """
    col = UPointColumn.from_mappings(fleet)
    build_s = _best_of(lambda: UPointColumn.from_mappings(fleet))

    scalar_out = [m.value_at(t) for m in fleet]
    scalar_s = _best_of(lambda: [m.value_at(t) for m in fleet])
    xs, ys, defined = atinstant_batch(col, t)
    kernel_s = _best_of(lambda: atinstant_batch(col, t))
    end_to_end_cold_s = _best_of(
        lambda: atinstant_batch(UPointColumn.from_mappings(fleet), t)
    )
    cached = Fleet(fleet)
    clear_cache()
    column_for(cached)  # prime: first query pays the cold cost once
    end_to_end_warm_s = _best_of(
        lambda: atinstant_batch(column_for(cached), t)
    )
    clear_cache()

    mismatches = 0
    for i, p in enumerate(scalar_out):
        if p is None:
            ok = not defined[i]
        else:
            ok = bool(defined[i]) and xs[i] == p.x and ys[i] == p.y
        mismatches += not ok
    return {
        "objects": len(fleet),
        "units": col.n_units,
        "instant": t,
        "defined": int(defined.sum()),
        "build_s": build_s,
        "scalar_s": scalar_s,
        "kernel_s": kernel_s,
        "end_to_end_cold_s": end_to_end_cold_s,
        "end_to_end_warm_s": end_to_end_warm_s,
        "speedup": scalar_s / kernel_s,
        "warm_speedup": end_to_end_cold_s / end_to_end_warm_s,
        "mismatches": mismatches,
    }


def measure_bbox_filter(fleet, cube: Cube) -> dict:
    """Time scalar vs vector bounding-cube filtering, with equivalence."""
    col = BBoxColumn.from_mappings(fleet)

    def scalar():
        return [
            i
            for i, m in enumerate(fleet)
            if m.units and m.bounding_cube().intersects(cube)
        ]

    scalar_out = scalar()
    scalar_s = _best_of(scalar)
    build_s = _best_of(lambda: BBoxColumn.from_mappings(fleet))
    mask = bbox_filter_batch(col, cube)
    kernel_s = _best_of(lambda: bbox_filter_batch(col, cube))
    vector_out = [int(k) for k, hit in zip(col.keys, mask) if hit]
    return {
        "objects": len(fleet),
        "hits": len(vector_out),
        "scalar_s": scalar_s,
        "build_s": build_s,
        "kernel_s": kernel_s,
        "end_to_end_cold_s": build_s + kernel_s,
        "speedup": scalar_s / kernel_s,
        "mismatches": int(scalar_out != vector_out),
    }


def run_all(count: int = FLEET_SIZE) -> dict:
    fleet = build_fleet(count)
    t_mid = 60.0  # inside most flights' lifetime
    cube = Cube(200, 200, 20, 800, 800, 90)
    return {
        "fleet_size": count,
        "atinstant": measure_atinstant(fleet, t_mid),
        "bbox_filter": measure_bbox_filter(fleet, cube),
    }


# -- pytest entry points ------------------------------------------------------


def test_v1_atinstant_speedup_and_equivalence():
    """The acceptance claim: ≥10× at 10,000 objects, zero mismatches."""
    fleet = build_fleet(FLEET_SIZE)
    stats = measure_atinstant(fleet, 60.0)
    assert stats["mismatches"] == 0
    assert stats["defined"] > 0  # the instant actually hits the fleet
    assert stats["speedup"] >= 10.0, stats


def test_v1_bbox_filter_equivalence():
    fleet = build_fleet(2000)
    stats = measure_bbox_filter(fleet, Cube(200, 200, 20, 800, 800, 90))
    assert stats["mismatches"] == 0
    assert 0 < stats["hits"] < len(fleet)


def test_v1_colcache_warm_beats_cold():
    """The column-cache claim: a warm snapshot query is ≥5× faster than
    one that rebuilds the column (mutation-invalidation is asserted in
    tests/test_parallel.py)."""
    fleet = build_fleet(FLEET_SIZE)
    stats = measure_atinstant(fleet, 60.0)
    assert stats["mismatches"] == 0
    assert stats["warm_speedup"] >= 5.0, stats


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write results to this file")
    parser.add_argument("--objects", type=int, default=FLEET_SIZE)
    args = parser.parse_args()

    results = run_all(args.objects)
    a = results["atinstant"]
    print(f"fleet: {a['objects']} objects, {a['units']} units")
    print(
        f"atinstant  scalar {a['scalar_s'] * 1e3:8.2f} ms   "
        f"kernel {a['kernel_s'] * 1e3:8.3f} ms   "
        f"speedup {a['speedup']:.1f}x   mismatches {a['mismatches']}"
    )
    print(
        f"           build {a['build_s'] * 1e3:9.2f} ms   "
        f"cold {a['end_to_end_cold_s'] * 1e3:10.2f} ms   "
        f"warm {a['end_to_end_warm_s'] * 1e3:8.3f} ms   "
        f"(warm speedup {a['warm_speedup']:.1f}x)"
    )
    b = results["bbox_filter"]
    print(
        f"bboxfilter scalar {b['scalar_s'] * 1e3:8.2f} ms   "
        f"kernel {b['kernel_s'] * 1e3:8.3f} ms   "
        f"speedup {b['speedup']:.1f}x   mismatches {b['mismatches']}"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(results, f, indent=2)
        print(f"wrote {args.json}")
