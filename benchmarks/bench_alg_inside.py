"""A2: the inside algorithm of Section 5.2.

Claims under test:

* total running time O(n + m + S) where n, m are the unit counts of the
  two operands and S the total number of moving segments;
* when the operands are far apart (disjoint bounding boxes at every
  refinement piece) the time collapses to O(n + m);
* the result alternates correctly and merges across refinement pieces
  (the concat step).
"""

import time

import pytest

from conftest import report, translating_mregion, zigzag_moving_point
from repro.ops.inside import inside
from repro.temporal.mapping import MovingPoint


@pytest.mark.parametrize("n_units", [32, 128, 512])
def test_a2_scaling_in_units(benchmark, n_units):
    """Time vs n + m with fixed segments per unit."""
    mp = zigzag_moving_point(n_units, speed=1.0)
    mr = translating_mregion(units=n_units, sides=8, radius=3.0)

    def run():
        return inside(mp, mr)

    mb = benchmark(run)
    assert mb  # defined somewhere


@pytest.mark.parametrize("sides", [8, 32, 128])
def test_a2_scaling_in_segments(benchmark, sides):
    """Time vs S (total moving segments) at fixed n, m."""
    mp = zigzag_moving_point(16, speed=1.0)
    mr = translating_mregion(units=16, sides=sides, radius=3.0)

    def run():
        return inside(mp, mr)

    mb = benchmark(run)
    assert mb


@pytest.mark.parametrize("n_units", [32, 256])
def test_a2_far_apart_fast_path(benchmark, n_units):
    """Disjoint bounding boxes: O(n + m), independent of S."""
    mp = MovingPoint.from_waypoints(
        [(0.0, (1e6, 1e6)), (float(n_units), (1e6 + n_units, 1e6))]
    )
    # Re-slice the far-away track into n_units units for a fair n + m.
    mp = zigzag_moving_point(n_units)
    shifted = MovingPoint(
        [u.with_interval(u.interval) for u in mp.units], validate=False
    )
    far = MovingPoint.from_waypoints(
        [
            (float(k), (1e6 + k, 1e6 + (k % 2)))
            for k in range(n_units + 1)
        ]
    )
    mr = translating_mregion(units=n_units, sides=64, radius=3.0)

    def run():
        return inside(far, mr)

    mb = benchmark(run)
    assert not mb.when(True)  # never inside
    assert mb.when(False).total_length() > 0


def test_a2_shape_check(benchmark):
    """The paper's shape: far-apart cost tracks n+m and stays well below
    the overlapping cost at large S."""

    def measure():
        rows = []
        for sides in (16, 128):
            mp = zigzag_moving_point(32, speed=1.0)
            near_mr = translating_mregion(units=32, sides=sides, radius=3.0)
            tic = time.perf_counter()
            for _ in range(3):
                inside(mp, near_mr)
            near = (time.perf_counter() - tic) / 3
            far_mp = MovingPoint.from_waypoints(
                [(float(k), (1e6 + k, 1e6 + (k % 2) * 0.5)) for k in range(33)]
            )
            tic = time.perf_counter()
            for _ in range(3):
                inside(far_mp, near_mr)
            far = (time.perf_counter() - tic) / 3
            rows.append((sides, near, far))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "A2 inside: overlapping vs far apart",
        [(s, f"{n * 1000:.2f}", f"{f * 1000:.2f}") for s, n, f in rows],
        ("msegs/unit", "overlap ms", "far ms"),
    )
    # Far-apart cost must be essentially independent of S; the ratio of
    # far-apart times across an 8x S increase stays near 1.
    small_s, large_s = rows[0][2], rows[1][2]
    assert large_s < small_s * 3.0
    # Overlapping cost grows with S while far-apart does not: at large S
    # the bbox fast path must win clearly.
    assert rows[1][2] < rows[1][1] / 2.0


def test_a2_correct_alternation(benchmark):
    """Alternation + concat over a workload with many crossings."""
    mp = zigzag_moving_point(64, speed=2.0)
    mr = translating_mregion(units=64, sides=8, radius=2.5)

    def run():
        return inside(mp, mr)

    mb = benchmark(run)
    # Pointwise agreement at dense sample times.
    for k in range(129):
        t = mb.start_time() + (mb.end_time() - mb.start_time()) * k / 128.0
        got = mb.value_at(t)
        if got is None:
            continue
        p = mp.value_at(t)
        r = mr.value_at(t)
        if p is None or r is None:
            continue
        assert bool(got.value) == r.contains_point(p), f"mismatch at t={t}"
