"""A2: the inside algorithm of Section 5.2.

Claims under test:

* total running time O(n + m + S) where n, m are the unit counts of the
  two operands and S the total number of moving segments;
* when the operands are far apart (disjoint bounding boxes at every
  refinement piece) the time collapses to O(n + m);
* the result alternates correctly and merges across refinement pieces
  (the concat step).
"""

import time

import pytest

from conftest import report, translating_mregion, zigzag_moving_point
from repro import obs
from repro.ops.inside import inside
from repro.temporal.mapping import MovingPoint


@pytest.mark.parametrize("n_units", [32, 128, 512])
def test_a2_scaling_in_units(benchmark, n_units):
    """Time vs n + m with fixed segments per unit."""
    mp = zigzag_moving_point(n_units, speed=1.0)
    mr = translating_mregion(units=n_units, sides=8, radius=3.0)

    def run():
        return inside(mp, mr)

    mb = benchmark(run)
    assert mb  # defined somewhere


@pytest.mark.parametrize("sides", [8, 32, 128])
def test_a2_scaling_in_segments(benchmark, sides):
    """Time vs S (total moving segments) at fixed n, m."""
    mp = zigzag_moving_point(16, speed=1.0)
    mr = translating_mregion(units=16, sides=sides, radius=3.0)

    def run():
        return inside(mp, mr)

    mb = benchmark(run)
    assert mb


@pytest.mark.parametrize("n_units", [32, 256])
def test_a2_far_apart_fast_path(benchmark, n_units):
    """Disjoint bounding boxes: O(n + m), independent of S."""
    mp = MovingPoint.from_waypoints(
        [(0.0, (1e6, 1e6)), (float(n_units), (1e6 + n_units, 1e6))]
    )
    # Re-slice the far-away track into n_units units for a fair n + m.
    mp = zigzag_moving_point(n_units)
    shifted = MovingPoint(
        [u.with_interval(u.interval) for u in mp.units], validate=False
    )
    far = MovingPoint.from_waypoints(
        [
            (float(k), (1e6 + k, 1e6 + (k % 2)))
            for k in range(n_units + 1)
        ]
    )
    mr = translating_mregion(units=n_units, sides=64, radius=3.0)

    def run():
        return inside(far, mr)

    mb = benchmark(run)
    assert not mb.when(True)  # never inside
    assert mb.when(False).total_length() > 0


def test_a2_shape_check(benchmark):
    """The paper's shape: far-apart cost tracks n+m and stays well below
    the overlapping cost at large S."""

    def measure():
        rows = []
        for sides in (16, 128):
            mp = zigzag_moving_point(32, speed=1.0)
            near_mr = translating_mregion(units=32, sides=sides, radius=3.0)
            tic = time.perf_counter()
            for _ in range(3):
                inside(mp, near_mr)
            near = (time.perf_counter() - tic) / 3
            far_mp = MovingPoint.from_waypoints(
                [(float(k), (1e6 + k, 1e6 + (k % 2) * 0.5)) for k in range(33)]
            )
            tic = time.perf_counter()
            for _ in range(3):
                inside(far_mp, near_mr)
            far = (time.perf_counter() - tic) / 3
            rows.append((sides, near, far))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "A2 inside: overlapping vs far apart",
        [(s, f"{n * 1000:.2f}", f"{f * 1000:.2f}") for s, n, f in rows],
        ("msegs/unit", "overlap ms", "far ms"),
    )
    # Far-apart cost must be essentially independent of S; the ratio of
    # far-apart times across an 8x S increase stays near 1.
    small_s, large_s = rows[0][2], rows[1][2]
    assert large_s < small_s * 3.0
    # Overlapping cost grows with S while far-apart does not: at large S
    # the bbox fast path must win clearly.
    assert rows[1][2] < rows[1][1] / 2.0


def test_a2_correct_alternation(benchmark):
    """Alternation + concat over a workload with many crossings."""
    mp = zigzag_moving_point(64, speed=2.0)
    mr = translating_mregion(units=64, sides=8, radius=2.5)

    def run():
        return inside(mp, mr)

    mb = benchmark(run)
    # Pointwise agreement at dense sample times.
    for k in range(129):
        t = mb.start_time() + (mb.end_time() - mb.start_time()) * k / 128.0
        got = mb.value_at(t)
        if got is None:
            continue
        p = mp.value_at(t)
        r = mr.value_at(t)
        if p is None or r is None:
            continue
        assert bool(got.value) == r.contains_point(p), f"mismatch at t={t}"


def test_a2_counter_refinement_linear():
    """The O(n + m + S) claim by operation count instead of wall-clock.

    The refinement scan must touch every unit exactly once
    (``refinement.unit_visits == n + m``) and the geometric work must be
    proportional to S (= pairs x msegs/unit), never to n x m.  Runs
    without pytest-benchmark (check.sh smoke).
    """
    rows = []
    for n in (32, 128, 512):
        mp = zigzag_moving_point(n, speed=1.0)
        mr = translating_mregion(units=n, sides=8, radius=3.0)
        with obs.capture() as c:
            inside(mp, mr)
        rows.append(
            (
                n,
                c.get("refinement.unit_visits"),
                c.get("inside.unit_pairs"),
                c.get("inside.crossing_quads"),
                c.get("inside.plumbline_tests"),
            )
        )
    report(
        "A2 inside op counts vs n (= m, fixed 8 msegs/unit)",
        rows,
        ("units n", "unit visits", "pairs", "quads", "plumblines"),
    )
    for n, visits, pairs, quads, plumbs in rows:
        assert visits == 2 * n  # each unit visited once: O(n + m)
        assert 0 < pairs <= 2 * (2 * n)  # refinement pieces, not n*m
        assert quads <= 8 * pairs  # geometric work bounded by S
        assert plumbs < n * n  # nowhere near quadratic
    # 16x the input must cost ~16x the quads (linear in S), not 256x.
    assert rows[-1][3] <= 32 * rows[0][3]


def test_a2_counter_far_apart_skips_geometry():
    """Disjoint bounding cubes: every unit pair short-circuits, so the
    counters prove the O(n + m) fast path does zero geometric work."""
    n = 64
    far_mp = MovingPoint.from_waypoints(
        [(float(k), (1e6 + k, 1e6 + (k % 2))) for k in range(n + 1)]
    )
    mr = translating_mregion(units=n, sides=64, radius=3.0)
    with obs.capture() as c:
        mb = inside(far_mp, mr)
    assert not mb.when(True)
    pairs = c.get("inside.unit_pairs")
    assert pairs > 0
    assert c.get("inside.bbox_fast_path") == pairs
    assert c.get("inside.crossing_quads") == 0
    assert c.get("inside.plumbline_tests") == 0
    report(
        "A2 inside far-apart op counts (n = m = 64, 64 msegs/unit)",
        [
            ("unit pairs", pairs),
            ("bbox fast path", c.get("inside.bbox_fast_path")),
            ("crossing quads", c.get("inside.crossing_quads")),
            ("plumbline tests", c.get("inside.plumbline_tests")),
        ],
        ("counter", "value"),
    )
