"""A1: the atinstant algorithm of Section 5.1.

Claims under test:

* O(log n + r) when the region value is "just needed for output"
  (unstructured evaluation), and O(log n + r·log r) when the proper
  region data structure is built (halfsegment sorting inside close());
* the unit lookup is a binary search: time grows logarithmically in the
  number of units n at fixed result size r;
* the evaluation cost grows (near-)linearly in r at fixed n.
"""

import math
import time

import pytest

from conftest import report, translating_mregion
from repro import obs
from repro.ops.interaction import mregion_atinstant


@pytest.mark.parametrize("n_units", [16, 256, 4096])
def test_a1_scaling_in_units(benchmark, n_units):
    """Time vs number of units n (fixed r): binary search dominates."""
    mr = translating_mregion(units=n_units, sides=8)
    t_query = mr.start_time() + 0.37 * (mr.end_time() - mr.start_time())

    def query():
        return mregion_atinstant(mr, t_query, structured=False)

    region = benchmark(query)
    assert region.area() > 0


@pytest.mark.parametrize("r_segments", [16, 64, 256, 1024])
def test_a1_scaling_in_result_size(benchmark, r_segments):
    """Time vs region size r (fixed n), unstructured path: ~linear."""
    mr = translating_mregion(units=4, sides=r_segments)
    t_query = mr.start_time() + 1.7

    def query():
        return mregion_atinstant(mr, t_query, structured=False)

    region = benchmark(query)
    assert len(region.segments()) == r_segments


@pytest.mark.parametrize("r_segments", [16, 64, 256])
def test_a1_structured_construction(benchmark, r_segments):
    """The O(log n + r log r) variant: building the proper structure."""
    mr = translating_mregion(units=4, sides=r_segments)
    t_query = mr.start_time() + 1.7

    def query():
        return mregion_atinstant(mr, t_query, structured=True)

    region = benchmark(query)
    assert len(region.segments()) == r_segments
    assert len(region.faces) == 1


def test_a1_log_vs_linear_shape(benchmark):
    """The paper's shape: doubling n adds ~constant lookup time, while
    doubling r roughly doubles evaluation time."""

    def measure():
        by_n = []
        for n in (64, 512, 4096):
            mr = translating_mregion(units=n, sides=8)
            t = mr.start_time() + 0.61 * (mr.end_time() - mr.start_time())
            tic = time.perf_counter()
            for _ in range(200):
                mregion_atinstant(mr, t, structured=False)
            by_n.append((n, (time.perf_counter() - tic) / 200))
        by_r = []
        for r in (32, 128, 512):
            mr = translating_mregion(units=4, sides=r)
            t = mr.start_time() + 1.7
            tic = time.perf_counter()
            for _ in range(50):
                mregion_atinstant(mr, t, structured=False)
            by_r.append((r, (time.perf_counter() - tic) / 50))
        return by_n, by_r

    by_n, by_r = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "A1 atinstant vs n (fixed r=8)",
        [(n, f"{t * 1e6:.1f}") for n, t in by_n],
        ("units n", "us/query"),
    )
    report(
        "A1 atinstant vs r (fixed n=4)",
        [(r, f"{t * 1e6:.1f}") for r, t in by_r],
        ("segments r", "us/query"),
    )
    # Shape assertions (generous, machine-independent):
    # 64x more units must cost far less than 8x more time (log growth)...
    assert by_n[-1][1] < by_n[0][1] * 8.0
    # ...while 16x larger results must cost at least 4x more (linear-ish).
    assert by_r[-1][1] > by_r[0][1] * 4.0


def test_a1_counter_probes_logarithmic():
    """The O(log n) claim by *operation count* instead of wall-clock.

    ``repro.obs`` counts the binary-search probes of ``unit_at`` and the
    moving segments evaluated; unlike timings these are exact, so the
    assertions are tight: probes bounded by ceil(log2 n) + 2, result work
    equal to r.  Runs without pytest-benchmark (check.sh smoke).
    """
    rows = []
    for n in (16, 256, 4096):
        mr = translating_mregion(units=n, sides=8)
        t = mr.start_time() + 0.37 * (mr.end_time() - mr.start_time())
        with obs.capture() as c:
            region = mregion_atinstant(mr, t, structured=False)
        assert region.area() > 0
        rows.append(
            (
                n,
                c.get("mapping.unit_at.probes"),
                c.get("atinstant.msegs_evaluated"),
            )
        )
    report(
        "A1 atinstant op counts vs n (fixed r=8)",
        rows,
        ("units n", "probes", "msegs"),
    )
    for n, probes, msegs in rows:
        assert 1 <= probes <= math.ceil(math.log2(n)) + 2
        assert msegs == 8  # evaluation work is exactly r, independent of n
    # 256x more units may add only ~log2(256) = 8 probes.
    assert rows[-1][1] - rows[0][1] <= 9


def test_a1_counter_result_size_linear():
    """Evaluation counts grow exactly with r while lookup stays O(log n)."""
    rows = []
    for r in (16, 64, 256):
        mr = translating_mregion(units=4, sides=r)
        t_query = mr.start_time() + 1.7
        with obs.capture() as c:
            region = mregion_atinstant(mr, t_query, structured=False)
        assert len(region.segments()) == r
        rows.append(
            (
                r,
                c.get("atinstant.msegs_evaluated"),
                c.get("mapping.unit_at.probes"),
            )
        )
    report(
        "A1 atinstant op counts vs r (fixed n=4)",
        rows,
        ("segments r", "msegs", "probes"),
    )
    for r, msegs, probes in rows:
        assert msegs == r
        assert probes <= math.ceil(math.log2(4)) + 2
