"""V5: parallel backend vs single-process vector backend (repro.parallel).

Claim under test: with a fleet's columns resident in shared memory and a
worker pool attached, a whole-fleet query answers ≥3× faster end-to-end
than the single-process vector backend paying the one-shot cost (column
build + kernel) — while returning the same answers bit for bit.  Two
companion claims ride along: the column cache makes a warm snapshot ≥5×
faster than a cold one, and STR bulk loading packs a 10k-entry
``RTree3D`` ≥5× faster than incremental insertion with node visits per
query no worse.

Runs both as pytest (equivalence + speedups asserted; the quick
``smoke`` test is wired into scripts/check.sh) and as a script:
``python benchmarks/bench_parallel.py --json BENCH_parallel.json``.
"""

import json
import random
import time

import numpy as np

from bench_vector import build_fleet
from repro import config, obs
from repro.index.rtree import RTree3D
from repro.parallel import (
    parallel_atinstant,
    parallel_window_intervals,
    set_workers,
    shutdown,
)
from repro.spatial.bbox import Cube, Rect
from repro.vector.cache import Fleet, clear_cache, column_for
from repro.vector.columns import UPointColumn
from repro.vector.kernels import atinstant_batch, window_intervals_batch

FLEET_SIZE = 10_000
WORKERS = 4
RECT = Rect(200, 200, 800, 800)
WINDOW = (10.0, 90.0)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        tic = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tic)
    return best


def _atinstant_mismatches(col, got, t: float) -> int:
    xs, ys, defined = got
    ex, ey, ed = atinstant_batch(col, t)
    bad = int(np.count_nonzero(defined != ed))
    bad += int(np.count_nonzero(xs[defined & ed] != ex[defined & ed]))
    bad += int(np.count_nonzero(ys[defined & ed] != ey[defined & ed]))
    return bad


def _window_mismatches(col, got, rect, t0, t1) -> int:
    expected = window_intervals_batch(col, rect, t0, t1)
    return sum(
        int(not np.array_equal(g, e)) for g, e in zip(got, expected)
    )


def measure_parallel(fleet, workers: int = WORKERS) -> dict:
    """End-to-end: single-process one-shot query vs warm parallel query.

    The single-process side pays what a fresh query pays (column build +
    kernel); the parallel side pays what every steady-state query pays
    (cached column lookup + chunked pool dispatch).  Equivalence is
    asserted in the same run.
    """
    min_objects = config.PARALLEL_MIN_OBJECTS
    config.PARALLEL_MIN_OBJECTS = min(min_objects, len(fleet))
    try:
        cached = Fleet(fleet)
        clear_cache()
        col = column_for(cached)
        t = 60.0
        t0, t1 = WINDOW

        # Warm the pool + shared segments: first dispatch pays setup.
        par_at = parallel_atinstant(col, t, workers=workers)
        par_win = parallel_window_intervals(col, RECT, t0, t1, workers=workers)

        single_at_s = _best_of(
            lambda: atinstant_batch(UPointColumn.from_mappings(fleet), t)
        )
        par_at_s = _best_of(
            lambda: parallel_atinstant(column_for(cached), t, workers=workers)
        )
        single_win_s = _best_of(
            lambda: window_intervals_batch(
                UPointColumn.from_mappings(fleet), RECT, t0, t1
            )
        )
        par_win_s = _best_of(
            lambda: parallel_window_intervals(
                column_for(cached), RECT, t0, t1, workers=workers
            )
        )
        with obs.capture() as counters:
            parallel_atinstant(column_for(cached), t, workers=workers)
            snap = counters.snapshot()["counters"]
        return {
            "objects": len(fleet),
            "workers": workers,
            "chunks": snap.get("parallel.chunks", 0),
            "fallbacks": snap.get("parallel.fallback", 0),
            "atinstant": {
                "single_process_s": single_at_s,
                "parallel_s": par_at_s,
                "speedup": single_at_s / par_at_s,
                "mismatches": _atinstant_mismatches(col, par_at, t),
            },
            "window": {
                "single_process_s": single_win_s,
                "parallel_s": par_win_s,
                "speedup": single_win_s / par_win_s,
                "mismatches": _window_mismatches(col, par_win, RECT, t0, t1),
            },
        }
    finally:
        config.PARALLEL_MIN_OBJECTS = min_objects
        clear_cache()


def measure_colcache(fleet) -> dict:
    """Cold snapshot (column rebuild) vs warm snapshot (cache hit)."""
    cached = Fleet(fleet)
    clear_cache()
    t = 60.0
    cold_s = _best_of(
        lambda: atinstant_batch(UPointColumn.from_mappings(fleet), t)
    )
    column_for(cached)  # prime
    warm_s = _best_of(lambda: atinstant_batch(column_for(cached), t))
    clear_cache()
    return {
        "objects": len(fleet),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def measure_str_bulk(entries_n: int = 10_000, queries_n: int = 50) -> dict:
    """STR bulk load vs incremental insertion, same entries and queries."""
    rng = random.Random(2000)
    entries = [
        (
            Cube(x, y, t, x + s, y + s, t + s),
            i,
        )
        for i, (x, y, t, s) in enumerate(
            (
                rng.uniform(0, 1000),
                rng.uniform(0, 1000),
                rng.uniform(0, 1000),
                rng.uniform(0.5, 10.0),
            )
            for _ in range(entries_n)
        )
    ]
    queries = [
        Cube(x, y, t, x + 50, y + 50, t + 50)
        for x, y, t in (
            (rng.uniform(0, 950), rng.uniform(0, 950), rng.uniform(0, 950))
            for _ in range(queries_n)
        )
    ]

    tic = time.perf_counter()
    packed = RTree3D.bulk_load(entries)
    bulk_s = time.perf_counter() - tic

    tic = time.perf_counter()
    grown = RTree3D()
    for cube, key in entries:
        grown.insert(cube, key)
    incremental_s = time.perf_counter() - tic

    def visits(tree):
        with obs.capture() as counters:
            for q in queries:
                tree.search_list(q)
            snap = counters.snapshot()["counters"]
        return snap.get("rtree.nodes_visited", 0)

    mismatches = sum(
        int(sorted(packed.search(q)) != sorted(grown.search(q)))
        for q in queries
    )
    return {
        "entries": entries_n,
        "queries": queries_n,
        "bulk_s": bulk_s,
        "incremental_s": incremental_s,
        "speedup": incremental_s / bulk_s,
        "node_visits_packed": visits(packed),
        "node_visits_grown": visits(grown),
        "mismatches": mismatches,
    }


def run_all(count: int = FLEET_SIZE, workers: int = WORKERS) -> dict:
    fleet = build_fleet(count)
    return {
        "fleet_size": count,
        "workers": workers,
        "parallel": measure_parallel(fleet, workers),
        "colcache": measure_colcache(fleet),
        "str_bulk": measure_str_bulk(),
    }


# -- pytest entry points ------------------------------------------------------


def test_v5_smoke_parallel_equivalence():
    """Fast gate for scripts/check.sh: 2 workers, tiny fleet, answers
    identical to the single-process kernels, chunked dispatch engaged."""
    min_objects = config.PARALLEL_MIN_OBJECTS
    config.PARALLEL_MIN_OBJECTS = 2
    try:
        fleet = build_fleet(400, seed=5)
        col = UPointColumn.from_mappings(fleet)
        t = 60.0
        t0, t1 = WINDOW

        with obs.capture() as counters:
            par_at = parallel_atinstant(col, t, workers=2)
            par_win = parallel_window_intervals(
                col, RECT, t0, t1, workers=2
            )
            snap = counters.snapshot()["counters"]
        assert _atinstant_mismatches(col, par_at, t) == 0
        assert _window_mismatches(col, par_win, RECT, t0, t1) == 0
        assert snap.get("parallel.chunks", 0) >= 2
        assert snap.get("parallel.fallback", 0) == 0
    finally:
        config.PARALLEL_MIN_OBJECTS = min_objects
        set_workers(None)
        shutdown()


def test_v5_parallel_speedup():
    """The acceptance claim: ≥3× end-to-end at 4 workers, 10k objects,
    zero mismatches for both the atinstant and window scans."""
    stats = measure_parallel(build_fleet(FLEET_SIZE), WORKERS)
    assert stats["atinstant"]["mismatches"] == 0
    assert stats["window"]["mismatches"] == 0
    assert stats["chunks"] >= 2
    assert stats["atinstant"]["speedup"] >= 3.0, stats
    assert stats["window"]["speedup"] >= 3.0, stats


def test_v5_colcache_speedup():
    stats = measure_colcache(build_fleet(FLEET_SIZE))
    assert stats["speedup"] >= 5.0, stats


def test_v5_str_bulk_load_speedup():
    stats = measure_str_bulk()
    assert stats["mismatches"] == 0
    assert stats["speedup"] >= 5.0, stats
    assert stats["node_visits_packed"] <= stats["node_visits_grown"], stats


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write results to this file")
    parser.add_argument("--objects", type=int, default=FLEET_SIZE)
    parser.add_argument("--workers", type=int, default=WORKERS)
    args = parser.parse_args()

    results = run_all(args.objects, args.workers)
    p = results["parallel"]
    print(
        f"fleet: {p['objects']} objects, {p['workers']} workers, "
        f"{p['chunks']} chunks"
    )
    for op in ("atinstant", "window"):
        s = p[op]
        print(
            f"{op:10s} single {s['single_process_s'] * 1e3:8.2f} ms   "
            f"parallel {s['parallel_s'] * 1e3:8.3f} ms   "
            f"speedup {s['speedup']:.1f}x   mismatches {s['mismatches']}"
        )
    c = results["colcache"]
    print(
        f"colcache   cold   {c['cold_s'] * 1e3:8.2f} ms   "
        f"warm     {c['warm_s'] * 1e3:8.3f} ms   "
        f"speedup {c['speedup']:.1f}x"
    )
    s = results["str_bulk"]
    print(
        f"str_bulk   grow   {s['incremental_s'] * 1e3:8.2f} ms   "
        f"bulk     {s['bulk_s'] * 1e3:8.2f} ms   "
        f"speedup {s['speedup']:.1f}x   visits {s['node_visits_packed']} "
        f"vs {s['node_visits_grown']}   mismatches {s['mismatches']}"
    )
    shutdown()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(results, f, indent=2)
        print(f"wrote {args.json}")
