"""S1: crash-safe storage — logging overhead and recovery cost.

Claims under test: (1) the WAL makes tuple appends durably atomic at a
bounded, measured cost over the unlogged store; (2) recovery replays a
committed log back into an equivalent store (equivalence asserted in
the same run); (3) with every failpoint disarmed the fault machinery is
one module-attribute branch per site — the disarmed crash matrix
machinery itself runs in milliseconds.

Runs both as pytest (equivalence assertions, no wall-clock flakiness)
and as a script: ``python benchmarks/bench_storage_faults.py --json
BENCH_storage.json``.
"""

import json
import random
import time

from repro import faults
from repro.storage.crashmatrix import format_matrix, run_crash_matrix
from repro.storage.pages import PageFile
from repro.storage.tuplestore import TupleStore
from repro.storage.wal import Wal
from repro.temporal.mapping import MovingPoint

TUPLES = 200
LEGS = 6
SCHEMA = [("name", "string"), ("track", "mpoint")]
PAGE_SIZE = 1024
INLINE_THRESHOLD = 64


def build_tracks(count: int = TUPLES, legs: int = LEGS, seed: int = 2000):
    """Deterministic multi-unit tracks that externalize into FLOB chains."""
    rng = random.Random(seed)
    tracks = []
    for _ in range(count):
        t = rng.uniform(0.0, 50.0)
        x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
        wps = [(t, (x, y))]
        for _leg in range(legs):
            t += rng.uniform(5.0, 30.0)
            x += rng.uniform(-200, 200)
            y += rng.uniform(-200, 200)
            wps.append((t, (x, y)))
        tracks.append(MovingPoint.from_waypoints(wps))
    return tracks


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        tic = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tic)
    return best


def _fill(store: TupleStore, tracks) -> None:
    for i, track in enumerate(tracks):
        store.append([f"obj{i}", track])


def _store(wal):
    return TupleStore(
        SCHEMA,
        PageFile(page_size=PAGE_SIZE),
        inline_threshold=INLINE_THRESHOLD,
        wal=wal,
        wal_scope="rel:bench" if wal is not None else "",
    )


def measure_append(tracks) -> dict:
    """Time unlogged vs WAL-logged appends of the same workload."""
    plain_s = _best_of(lambda: _fill(_store(None), tracks))
    logged_s = _best_of(lambda: _fill(_store(Wal()), tracks))
    return {
        "tuples": len(tracks),
        "plain_append_s": plain_s,
        "wal_append_s": logged_s,
        "wal_overhead_x": logged_s / plain_s,
    }


def measure_recovery(tracks) -> dict:
    """Time a full recovery replay AND assert equivalence, same run."""
    wal = Wal()
    store = _store(wal)
    _fill(store, tracks)
    original = [(r[0].value, len(r[1].units)) for r in store.scan()]
    pf = store.pagefile

    recovered = TupleStore.recover(
        SCHEMA, pf, wal, wal_scope="rel:bench",
        inline_threshold=INLINE_THRESHOLD,
    )
    replayed = [(r[0].value, len(r[1].units)) for r in recovered.scan()]
    mismatches = sum(a != b for a, b in zip(original, replayed))
    mismatches += abs(len(original) - len(replayed))

    recover_s = _best_of(
        lambda: TupleStore.recover(
            SCHEMA, pf, wal, wal_scope="rel:bench",
            inline_threshold=INLINE_THRESHOLD,
        )
    )
    checkpoint_s = _best_of(store.checkpoint)
    return {
        "tuples": len(tracks),
        "wal_bytes": wal.durable_bytes,
        "pages": pf.page_count,
        "recover_s": recover_s,
        "checkpoint_s": checkpoint_s,
        "mismatches": mismatches,
    }


def measure_disarmed_reads(tracks) -> dict:
    """Scan cost with the fault machinery present but disarmed."""
    store = _store(None)
    _fill(store, tracks)
    faults.disarm()
    scan_s = _best_of(lambda: list(store.scan()))
    return {"tuples": len(tracks), "scan_s": scan_s}


def run_all(count: int = TUPLES) -> dict:
    tracks = build_tracks(count)
    tic = time.perf_counter()
    matrix = run_crash_matrix(seed=2000)
    matrix_s = time.perf_counter() - tic
    return {
        "append": measure_append(tracks),
        "recovery": measure_recovery(tracks),
        "disarmed_scan": measure_disarmed_reads(tracks),
        "crash_matrix": {
            "wall_s": matrix_s,
            "survived": sum(e.ok for e in matrix),
            "total": len(matrix),
        },
    }


# -- pytest entry points (assertions only, no wall-clock thresholds) -------


def test_s1_recovery_equivalence():
    res = measure_recovery(build_tracks(40))
    assert res["mismatches"] == 0
    assert res["pages"] > 0 and res["wal_bytes"] > 0


def test_s1_crash_matrix_survives():
    entries = run_crash_matrix(seed=2000)
    assert all(e.ok for e in entries), format_matrix(entries)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tuples", type=int, default=TUPLES,
                        help=f"workload size (default {TUPLES})")
    parser.add_argument("--json", default=None, help="write results to this file")
    args = parser.parse_args()

    results = run_all(args.tuples)
    app, rec = results["append"], results["recovery"]
    print(f"appends ({app['tuples']} tuples): "
          f"plain {app['plain_append_s']:.4f}s, "
          f"wal {app['wal_append_s']:.4f}s "
          f"({app['wal_overhead_x']:.2f}x)")
    print(f"recovery: {rec['recover_s']:.4f}s over {rec['wal_bytes']} WAL "
          f"bytes / {rec['pages']} pages, "
          f"checkpoint {rec['checkpoint_s']:.4f}s, "
          f"{rec['mismatches']} mismatches")
    cm = results["crash_matrix"]
    print(f"crash matrix: {cm['survived']}/{cm['total']} survived "
          f"in {cm['wall_s']:.2f}s")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(results, f, indent=2)
        print(f"wrote {args.json}")
