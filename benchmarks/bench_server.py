"""V7: the query service — sustained qps under concurrent ingest.

Claim under test: snapshot-isolated reads do not collapse when the
write path is live.  With 4 client workers issuing whole-fleet
``SNAPSHOT`` queries over the wire, adding a continuous ``INGEST``
stream (WAL-durable, group-committed) keeps sustained throughput at
**≥ 0.5×** the no-ingest baseline — the lock is held per request, the
column cache splices forward instead of rebuilding, and the group
committer amortizes the fsync.

Two degradation phases ride along (PR 9): a *degraded-mode* run — 10%
of responses dropped after the work (``server.conn_drop``) plus one
SIGKILLed fork worker mid-query — and an *overload* run that saturates
admission control (``max_inflight=2`` against 3× the query workers).
Both record p50/p99 and the shed/retry counters into the JSON; the
claim is that client-visible failures stay at zero (retries + dedup
absorb the chaos) and the p99 of *admitted* requests stays bounded.

Runs both as pytest (the quick ``smoke`` tests — start → ingest →
query → shutdown — are wired into scripts/check.sh) and as a script::

    python benchmarks/bench_server.py --json BENCH_server.json
"""

import argparse
import json
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro import faults, obs
from repro.server.client import ServerClient
from repro.server.executor import FleetExecutor
from repro.server.session import RunningServer, serve_in_thread
from repro.storage.wal import Wal
from repro.workloads.trajectories import FlightGenerator

FLEET_SIZE = 500
WORKERS = 4
DURATION_S = 2.0
QUERY_T = 60.0

#: Fault plan of the degraded-mode phase: one in ten responses vanishes
#: after the work is done (seeded, so runs are comparable).
DEGRADED_FAULTS = "server.conn_drop=prob:0.1:2026"


def build_mappings(objects: int, seed: int = 2000):
    gen = FlightGenerator(seed=seed)
    return [gen.flight(legs=4) for _ in range(objects)]


def start_server(
    mappings, wal: Optional[Wal] = None, **kwargs
) -> RunningServer:
    executor = FleetExecutor()
    executor.register_fleet("fleet", mappings)
    return serve_in_thread(executor, wal=wal, **kwargs)


def _query_worker(
    port: int, stop: threading.Event, latencies: List[float],
    errors: List[str],
) -> None:
    try:
        with ServerClient("127.0.0.1", port) as client:
            while not stop.is_set():
                tic = time.perf_counter()
                client.snapshot("fleet", QUERY_T)
                latencies.append(time.perf_counter() - tic)
    except Exception as exc:
        errors.append(f"query: {type(exc).__name__}: {exc}")


def _ingest_worker(
    port: int, stop: threading.Event, counter: List[int], objects: int,
    errors: List[str],
) -> None:
    """A continuous WAL-durable ingest stream, rotating over the fleet."""
    t0 = 1.0e6
    try:
        with ServerClient("127.0.0.1", port) as client:
            k = 0
            while not stop.is_set():
                obj = k % objects
                start = t0 + 10.0 * (k // objects)
                client.ingest(
                    "fleet", obj, (start, 0.0, 0.0, start + 8.0, 5.0, 5.0)
                )
                counter[0] += 1
                k += 1
    except Exception as exc:
        errors.append(f"ingest: {type(exc).__name__}: {exc}")


def measure_qps(
    mappings,
    duration: float,
    workers: int,
    with_ingest: bool,
    wal_path: Optional[str] = None,
    fault_spec: Optional[str] = None,
    max_inflight: Optional[int] = None,
) -> Dict[str, float]:
    """One traffic phase; optionally degraded (``fault_spec``) and/or
    admission-limited (``max_inflight``).

    Degraded/limited phases also report the resilience counters:
    ``shed`` (requests answered Overloaded), ``client_retries``,
    ``shed_rate``, and ``client_errors`` (failures the retry budget
    could not absorb — the headline number, expected 0).
    """
    wal = Wal(wal_path) if wal_path else (Wal() if with_ingest else None)
    server_kwargs = {}
    if max_inflight is not None:
        server_kwargs["max_inflight"] = max_inflight
    run = start_server(mappings, wal=wal, **server_kwargs)
    stop = threading.Event()
    latencies: List[List[float]] = [[] for _ in range(workers)]
    ingested = [0]
    errors: List[str] = []
    threads = [
        threading.Thread(
            target=_query_worker,
            args=(run.port, stop, latencies[i], errors),
        )
        for i in range(workers)
    ]
    if with_ingest:
        threads.append(
            threading.Thread(
                target=_ingest_worker,
                args=(run.port, stop, ingested, len(mappings), errors),
            )
        )
    degraded = fault_spec is not None or max_inflight is not None
    if degraded:
        obs.enable()
        shed0 = obs.get("server.shed")
        retries0 = obs.get("client.retries")
    if fault_spec:
        faults.arm_spec(fault_spec)
    try:
        for th in threads:
            th.start()
        time.sleep(duration)
        stop.set()
        for th in threads:
            th.join(timeout=20)
    finally:
        faults.disarm()
    run.stop()
    if wal is not None:
        wal.close()
    samples = sorted(s for lane in latencies for s in lane)
    queries = len(samples)
    out = {
        "queries": queries,
        "qps": queries / duration,
        "p50_ms": 1000.0 * samples[int(0.50 * (queries - 1))] if samples else 0.0,
        "p99_ms": 1000.0 * samples[int(0.99 * (queries - 1))] if samples else 0.0,
    }
    if with_ingest:
        out["units_ingested"] = ingested[0]
    if degraded:
        shed = obs.get("server.shed") - shed0
        out["shed"] = shed
        out["client_retries"] = obs.get("client.retries") - retries0
        total = queries + shed
        out["shed_rate"] = shed / total if total else 0.0
        out["client_errors"] = len(errors)
    return out


def measure_worker_kill(seed: int = 2026) -> Dict[str, float]:
    """Time a parallel window query through one SIGKILLed fork worker.

    The pool must detect the death, respawn, retry the lost chunks,
    and still return the bit-identical result; the entry records the
    recovery cost next to an unfaulted run of the same query.
    """
    import numpy as np

    from repro import config
    from repro.parallel import parallel_window_intervals, pool, shmcol
    from repro.server.chaos import _track
    from repro.spatial.bbox import Rect
    from repro.vector.store import _BUILDERS

    n = max(config.PARALLEL_MIN_OBJECTS, 1024) + 64
    col = _BUILDERS["upoint"]([_track(seed, i) for i in range(n)])
    rect = Rect(0.0, 0.0, 60.0, 60.0)
    obs.enable()
    pool.shutdown()
    shmcol.release_all()
    try:
        tic = time.perf_counter()
        clean = parallel_window_intervals(col, rect, 0.0, 12.0, workers=4)
        clean_s = time.perf_counter() - tic
        deaths0 = obs.get("parallel.worker_deaths")
        retries0 = obs.get("parallel.chunk_retries")
        faults.arm("parallel.worker_kill", "once")
        tic = time.perf_counter()
        killed = parallel_window_intervals(col, rect, 0.0, 12.0, workers=4)
        killed_s = time.perf_counter() - tic
    finally:
        faults.disarm()
        pool.shutdown()
        shmcol.release_all()
    identical = all(np.array_equal(a, b) for a, b in zip(killed, clean))
    return {
        "objects": n,
        "clean_ms": 1000.0 * clean_s,
        "killed_ms": 1000.0 * killed_s,
        "worker_deaths": obs.get("parallel.worker_deaths") - deaths0,
        "chunk_retries": obs.get("parallel.chunk_retries") - retries0,
        "result_identical": identical,
    }


# ---------------------------------------------------------------------------
# pytest: the fast smoke wired into scripts/check.sh
# ---------------------------------------------------------------------------


def test_v7_smoke_lifecycle():
    """Start → ingest → query → shutdown, over the wire, in one breath."""
    mappings = build_mappings(8, seed=7)
    wal = Wal()
    run = start_server(mappings, wal=wal)
    try:
        with ServerClient("127.0.0.1", run.port) as client:
            before = client.snapshot("fleet", QUERY_T)
            assert int(before.fields["objects"]) == 8
            units = client.ingest(
                "fleet", 0, (1.0e6, 0.0, 0.0, 1.0e6 + 8.0, 2.0, 2.0)
            )
            assert units == len(mappings[0].units) + 1
            after = client.snapshot("fleet", 1.0e6 + 4.0)
            assert len(after.rows) == 1  # only the freshly fed object
            assert int(after.fields["version"]) > int(before.fields["version"])
            stats = client.stats()
            assert stats.stat("fleet.fleet.objects") == "8"
    finally:
        run.stop()
        wal.close()


def test_v7_smoke_concurrent_ingest_qps():
    """A short sustained run with live ingest still answers queries."""
    mappings = build_mappings(32, seed=11)
    result = measure_qps(
        mappings, duration=0.5, workers=2, with_ingest=True
    )
    assert result["queries"] > 0
    assert result["units_ingested"] > 0


def test_v7_smoke_degraded_conn_drop():
    """10% dropped responses: retries absorb every one, zero failures."""
    mappings = build_mappings(16, seed=13)
    result = measure_qps(
        mappings, duration=0.5, workers=2, with_ingest=True,
        fault_spec=DEGRADED_FAULTS,
    )
    assert result["queries"] > 0
    assert result["client_errors"] == 0


# ---------------------------------------------------------------------------
# script: the sustained-throughput measurement
# ---------------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=FLEET_SIZE)
    parser.add_argument("--duration", type=float, default=DURATION_S)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--json", default=None, metavar="PATH")
    args = parser.parse_args()

    mappings = build_mappings(args.objects)
    print(
        f"fleet: {args.objects} objects; {args.workers} query workers; "
        f"{args.duration:g}s per phase"
    )

    baseline = measure_qps(
        mappings, args.duration, args.workers, with_ingest=False
    )
    print(
        f"baseline (no ingest):   {baseline['qps']:8.1f} qps   "
        f"p50 {baseline['p50_ms']:.2f} ms   p99 {baseline['p99_ms']:.2f} ms"
    )

    tmp = tempfile.mkdtemp(prefix="bench_server_")
    wal_path = os.path.join(tmp, "ingest.wal")
    loaded = measure_qps(
        mappings, args.duration, args.workers, with_ingest=True,
        wal_path=wal_path,
    )
    print(
        f"with concurrent ingest: {loaded['qps']:8.1f} qps   "
        f"p50 {loaded['p50_ms']:.2f} ms   p99 {loaded['p99_ms']:.2f} ms   "
        f"({loaded['units_ingested']} units ingested, WAL-durable)"
    )

    ratio = loaded["qps"] / baseline["qps"] if baseline["qps"] else 0.0
    print(f"qps ratio (ingest / baseline): {ratio:.2f}")
    assert ratio >= 0.5, (
        f"sustained qps under ingest fell to {ratio:.2f}x of baseline"
    )

    degraded = measure_qps(
        mappings, args.duration, args.workers, with_ingest=True,
        wal_path=os.path.join(tmp, "degraded.wal"),
        fault_spec=DEGRADED_FAULTS,
    )
    print(
        f"degraded (10% drops):   {degraded['qps']:8.1f} qps   "
        f"p50 {degraded['p50_ms']:.2f} ms   p99 {degraded['p99_ms']:.2f} ms   "
        f"({degraded['client_retries']} retries, "
        f"{degraded['client_errors']} client errors)"
    )
    assert degraded["client_errors"] == 0, (
        "conn drops leaked through the retry budget: "
        f"{degraded['client_errors']} client-visible failures"
    )

    kill = measure_worker_kill()
    print(
        f"worker kill:            clean {kill['clean_ms']:.1f} ms → "
        f"killed {kill['killed_ms']:.1f} ms   "
        f"({kill['worker_deaths']} death(s), "
        f"{kill['chunk_retries']} chunk(s) retried, "
        f"identical={kill['result_identical']})"
    )
    assert kill["result_identical"], (
        "post-respawn parallel result differs from the clean run"
    )

    overload = measure_qps(
        mappings, args.duration, 3 * args.workers, with_ingest=False,
        max_inflight=2,
    )
    print(
        f"overload (inflight=2):  {overload['qps']:8.1f} qps   "
        f"p50 {overload['p50_ms']:.2f} ms   p99 {overload['p99_ms']:.2f} ms   "
        f"(shed rate {overload['shed_rate']:.2f}, "
        f"{overload['client_errors']} client errors)"
    )
    assert overload["client_errors"] == 0, (
        "admission control produced client-visible failures: "
        f"{overload['client_errors']}"
    )

    if args.json:
        doc = {
            "fleet_size": args.objects,
            "workers": args.workers,
            "duration_s": args.duration,
            "baseline": baseline,
            "with_ingest": loaded,
            "qps_ratio": ratio,
            "degraded": degraded,
            "worker_kill": kill,
            "overload": overload,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
