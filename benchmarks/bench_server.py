"""V7: the query service — sustained qps under concurrent ingest.

Claim under test: snapshot-isolated reads do not collapse when the
write path is live.  With 4 client workers issuing whole-fleet
``SNAPSHOT`` queries over the wire, adding a continuous ``INGEST``
stream (WAL-durable, group-committed) keeps sustained throughput at
**≥ 0.5×** the no-ingest baseline — the lock is held per request, the
column cache splices forward instead of rebuilding, and the group
committer amortizes the fsync.

Runs both as pytest (the quick ``smoke`` tests — start → ingest →
query → shutdown — are wired into scripts/check.sh) and as a script::

    python benchmarks/bench_server.py --json BENCH_server.json
"""

import argparse
import json
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.server.client import ServerClient
from repro.server.executor import FleetExecutor
from repro.server.session import RunningServer, serve_in_thread
from repro.storage.wal import Wal
from repro.workloads.trajectories import FlightGenerator

FLEET_SIZE = 500
WORKERS = 4
DURATION_S = 2.0
QUERY_T = 60.0


def build_mappings(objects: int, seed: int = 2000):
    gen = FlightGenerator(seed=seed)
    return [gen.flight(legs=4) for _ in range(objects)]


def start_server(mappings, wal: Optional[Wal] = None) -> RunningServer:
    executor = FleetExecutor()
    executor.register_fleet("fleet", mappings)
    return serve_in_thread(executor, wal=wal)


def _query_worker(
    port: int, stop: threading.Event, latencies: List[float]
) -> None:
    with ServerClient("127.0.0.1", port) as client:
        while not stop.is_set():
            tic = time.perf_counter()
            client.snapshot("fleet", QUERY_T)
            latencies.append(time.perf_counter() - tic)


def _ingest_worker(
    port: int, stop: threading.Event, counter: List[int], objects: int
) -> None:
    """A continuous WAL-durable ingest stream, rotating over the fleet."""
    t0 = 1.0e6
    with ServerClient("127.0.0.1", port) as client:
        k = 0
        while not stop.is_set():
            obj = k % objects
            start = t0 + 10.0 * (k // objects)
            client.ingest(
                "fleet", obj, (start, 0.0, 0.0, start + 8.0, 5.0, 5.0)
            )
            counter[0] += 1
            k += 1


def measure_qps(
    mappings,
    duration: float,
    workers: int,
    with_ingest: bool,
    wal_path: Optional[str] = None,
) -> Dict[str, float]:
    wal = Wal(wal_path) if wal_path else (Wal() if with_ingest else None)
    run = start_server(mappings, wal=wal)
    stop = threading.Event()
    latencies: List[List[float]] = [[] for _ in range(workers)]
    ingested = [0]
    threads = [
        threading.Thread(
            target=_query_worker, args=(run.port, stop, latencies[i])
        )
        for i in range(workers)
    ]
    if with_ingest:
        threads.append(
            threading.Thread(
                target=_ingest_worker,
                args=(run.port, stop, ingested, len(mappings)),
            )
        )
    for th in threads:
        th.start()
    time.sleep(duration)
    stop.set()
    for th in threads:
        th.join(timeout=20)
    run.stop()
    if wal is not None:
        wal.close()
    samples = sorted(s for lane in latencies for s in lane)
    queries = len(samples)
    out = {
        "queries": queries,
        "qps": queries / duration,
        "p50_ms": 1000.0 * samples[int(0.50 * (queries - 1))] if samples else 0.0,
        "p99_ms": 1000.0 * samples[int(0.99 * (queries - 1))] if samples else 0.0,
    }
    if with_ingest:
        out["units_ingested"] = ingested[0]
    return out


# ---------------------------------------------------------------------------
# pytest: the fast smoke wired into scripts/check.sh
# ---------------------------------------------------------------------------


def test_v7_smoke_lifecycle():
    """Start → ingest → query → shutdown, over the wire, in one breath."""
    mappings = build_mappings(8, seed=7)
    wal = Wal()
    run = start_server(mappings, wal=wal)
    try:
        with ServerClient("127.0.0.1", run.port) as client:
            before = client.snapshot("fleet", QUERY_T)
            assert int(before.fields["objects"]) == 8
            units = client.ingest(
                "fleet", 0, (1.0e6, 0.0, 0.0, 1.0e6 + 8.0, 2.0, 2.0)
            )
            assert units == len(mappings[0].units) + 1
            after = client.snapshot("fleet", 1.0e6 + 4.0)
            assert len(after.rows) == 1  # only the freshly fed object
            assert int(after.fields["version"]) > int(before.fields["version"])
            stats = client.stats()
            assert stats.stat("fleet.fleet.objects") == "8"
    finally:
        run.stop()
        wal.close()


def test_v7_smoke_concurrent_ingest_qps():
    """A short sustained run with live ingest still answers queries."""
    mappings = build_mappings(32, seed=11)
    result = measure_qps(
        mappings, duration=0.5, workers=2, with_ingest=True
    )
    assert result["queries"] > 0
    assert result["units_ingested"] > 0


# ---------------------------------------------------------------------------
# script: the sustained-throughput measurement
# ---------------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=FLEET_SIZE)
    parser.add_argument("--duration", type=float, default=DURATION_S)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--json", default=None, metavar="PATH")
    args = parser.parse_args()

    mappings = build_mappings(args.objects)
    print(
        f"fleet: {args.objects} objects; {args.workers} query workers; "
        f"{args.duration:g}s per phase"
    )

    baseline = measure_qps(
        mappings, args.duration, args.workers, with_ingest=False
    )
    print(
        f"baseline (no ingest):   {baseline['qps']:8.1f} qps   "
        f"p50 {baseline['p50_ms']:.2f} ms   p99 {baseline['p99_ms']:.2f} ms"
    )

    tmp = tempfile.mkdtemp(prefix="bench_server_")
    wal_path = os.path.join(tmp, "ingest.wal")
    loaded = measure_qps(
        mappings, args.duration, args.workers, with_ingest=True,
        wal_path=wal_path,
    )
    print(
        f"with concurrent ingest: {loaded['qps']:8.1f} qps   "
        f"p50 {loaded['p50_ms']:.2f} ms   p99 {loaded['p99_ms']:.2f} ms   "
        f"({loaded['units_ingested']} units ingested, WAL-durable)"
    )

    ratio = loaded["qps"] / baseline["qps"] if baseline["qps"] else 0.0
    print(f"qps ratio (ingest / baseline): {ratio:.2f}")
    assert ratio >= 0.5, (
        f"sustained qps under ingest fell to {ratio:.2f}x of baseline"
    )

    if args.json:
        doc = {
            "fleet_size": args.objects,
            "workers": args.workers,
            "duration_s": args.duration,
            "baseline": baseline,
            "with_ingest": loaded,
            "qps_ratio": ratio,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
