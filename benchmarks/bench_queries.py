"""Q1/Q2: the two example queries of Section 2.

Q1 — "all Lufthansa flights longer than 5000 km": a projection into
space (trajectory + length), run as SQL text.

Q2 — "all pairs of planes that came closer than 500 m": a genuine
spatio-temporal join via the lifted distance and
``val(initial(atmin(...)))``, run (a) as SQL over a nested-loop cross
product and (b) through the R-tree-filtered join plan — the index
ablation.  Both plans must return identical results; the filtered plan
wins increasingly with relation size.
"""

import time

import pytest

from conftest import flights_relation, report
from repro.db.executor import CrossProduct, IndexFilteredProduct, Select, SeqScan
from repro.db.expressions import And, Call, Column, Compare, Literal

Q1 = (
    "SELECT airline, id FROM planes "
    "WHERE airline = ``Lufthansa'' AND length(trajectory(flight)) > 5000"
)

Q2 = (
    "SELECT p.id AS pid, q.id AS qid FROM planes p, planes q "
    "WHERE p.id < q.id "
    "AND val(initial(atmin(distance(p.flight, q.flight)))) < 500"
)


@pytest.mark.parametrize("planes", [16, 64])
def test_q1_projection_query(benchmark, planes):
    """Query 1 as SQL text, at growing relation sizes."""
    db = flights_relation(planes)

    def run():
        return db.query(Q1)

    rows = benchmark(run)
    assert all(r["airline"].value == "Lufthansa" for r in rows)
    report(
        f"Q1 (|planes|={planes})",
        [(planes, len(rows))],
        ("planes", "qualifying flights"),
    )


@pytest.mark.parametrize("planes", [12, 24])
def test_q2_join_nested_loop(benchmark, planes):
    """Query 2 as SQL text over the nested-loop plan."""
    db = flights_relation(planes)

    def run():
        return db.query(Q2)

    rows = benchmark(run)
    pairs = {(r["pid"].value, r["qid"].value) for r in rows}
    assert all(a < b for a, b in pairs)


def _join_where():
    return And(
        Compare("<", Column("p.id"), Column("q.id")),
        Call(
            "ever_closer_than",
            (Column("p.flight"), Column("q.flight"), Literal(500.0)),
        ),
    )


@pytest.mark.parametrize("planes", [24])
def test_q2_join_indexed(benchmark, planes):
    """Query 2 through the R-tree-filtered join plan."""
    db = flights_relation(planes)
    rel = db.relation("planes")
    where = _join_where()

    def run():
        return Select(
            IndexFilteredProduct(
                SeqScan(rel, "p"), SeqScan(rel, "q"),
                "p.flight", "q.flight", slack=500.0,
            ),
            where,
        ).execute()

    rows = benchmark(run)
    # Equal to the plain plan's results.
    plain = Select(
        CrossProduct(SeqScan(rel, "p"), SeqScan(rel, "q")), where
    ).execute()

    def key(rs):
        return sorted((r["p.id"].value, r["q.id"].value) for r in rs)

    assert key(rows) == key(plain)


def test_q2_index_ablation_shape(benchmark):
    """The ablation series: nested loop vs R-tree filter vs relation size.

    Departures are staggered so flights rarely co-exist in time — the
    workload where the bounding-cube filter prunes most candidate pairs.
    The filtered plan's advantage must grow with relation size.
    """

    def measure():
        rows_out = []
        for planes in (16, 32, 64):
            db = flights_relation(planes, stagger=600.0)
            rel = db.relation("planes")
            where = _join_where()
            tic = time.perf_counter()
            plain = Select(
                CrossProduct(SeqScan(rel, "p"), SeqScan(rel, "q")), where
            ).execute()
            t_plain = time.perf_counter() - tic
            tic = time.perf_counter()
            filtered = Select(
                IndexFilteredProduct(
                    SeqScan(rel, "p"), SeqScan(rel, "q"),
                    "p.flight", "q.flight", slack=500.0,
                ),
                where,
            ).execute()
            t_filtered = time.perf_counter() - tic
            assert len(plain) == len(filtered)
            rows_out.append((planes, len(plain), t_plain, t_filtered))
        return rows_out

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "Q2 ablation: nested loop vs R-tree filter",
        [
            (p, hits, f"{tp * 1000:.1f}", f"{tf * 1000:.1f}",
             f"{tp / tf:.2f}x" if tf > 0 else "-")
            for p, hits, tp, tf in rows
        ],
        ("planes", "pairs", "nested ms", "filtered ms", "speedup"),
    )
