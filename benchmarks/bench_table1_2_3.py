"""T1–T3: the type-system tables as executable artifacts.

Table 1 — the abstract signature; Table 2 — the discrete signature;
Table 3 — the abstract→discrete correspondence.  The benchmarks verify
the signatures generate exactly the paper's type sets and time the full
correspondence round-trip (every abstract ``moving(α)`` mapped to its
discrete ``mapping(u_α)`` and instantiated through its implementing
class).
"""

import pytest

from conftest import report
from repro.typesystem import (
    ABSTRACT_SIGNATURE,
    DISCRETE_SIGNATURE,
    discrete_of,
    implementation_of,
    parse_type,
)

#: Table 3 of the paper, verbatim.
TABLE3 = {
    "moving(int)": "mapping(const(int))",
    "moving(string)": "mapping(const(string))",
    "moving(bool)": "mapping(const(bool))",
    "moving(real)": "mapping(ureal)",
    "moving(point)": "mapping(upoint)",
    "moving(points)": "mapping(upoints)",
    "moving(line)": "mapping(uline)",
    "moving(region)": "mapping(uregion)",
}


def test_table1_type_set(benchmark):
    """Table 1: the abstract signature generates exactly the paper's types."""

    def generate():
        return {str(t) for t in ABSTRACT_SIGNATURE.all_types(max_depth=2)}

    types = benchmark(generate)
    expected = {
        "int", "real", "string", "bool",
        "point", "points", "line", "region", "instant",
        # range over BASE ∪ TIME
        "range(int)", "range(real)", "range(string)", "range(bool)",
        "range(instant)",
        # intime and moving over BASE ∪ SPATIAL
        *{f"{c}({a})" for c in ("intime", "moving")
          for a in ("int", "real", "string", "bool",
                    "point", "points", "line", "region")},
    }
    assert types == expected
    report(
        "Table 1 (abstract signature)",
        [(len(types), len(expected), types == expected)],
        ("generated", "expected", "match"),
    )


def test_table2_type_set(benchmark):
    """Table 2: the discrete signature adds UNIT and MAPPING kinds."""

    def generate():
        return {str(t) for t in DISCRETE_SIGNATURE.all_types(max_depth=3)}

    types = benchmark(generate)
    for unit in ("ureal", "upoint", "upoints", "uline", "uregion"):
        assert unit in types
        assert f"mapping({unit})" in types
    for alpha in ("int", "real", "string", "bool",
                  "point", "points", "line", "region"):
        assert f"const({alpha})" in types
        assert f"mapping(const({alpha}))" in types
    assert "moving(point)" not in types  # no moving constructor in Table 2
    report(
        "Table 2 (discrete signature)",
        [(len(types),)],
        ("generated types",),
    )


def test_table3_correspondence(benchmark):
    """Table 3: moving(α) → mapping(u_α), each with an implementation."""

    def roundtrip():
        out = {}
        for abstract, expected in TABLE3.items():
            term = discrete_of(parse_type(abstract))
            impl = implementation_of(term)
            out[abstract] = (str(term), impl.__name__)
        return out

    got = benchmark(roundtrip)
    rows = []
    for abstract, expected in TABLE3.items():
        term, impl = got[abstract]
        assert term == expected, f"{abstract}: {term} != {expected}"
        rows.append((abstract, term, impl))
    report("Table 3 (abstract -> discrete)", rows, ("abstract", "discrete", "class"))
