"""F6: Figure 6 — uregion instances and endpoint degeneracies.

The figure shows a moving region unit whose faces deform continuously
and degenerate at the unit interval's end points.  Benchmarks:
construction+validation of growing uregions, the interior ι evaluation,
and the ι_s/ι_e endpoint cleanup (degenerate-segment removal plus the
odd-parity fragment rule).
"""

import pytest

from conftest import report, translating_mregion
from repro.spatial.region import Region
from repro.temporal.interpolate import collapse_to_point
from repro.temporal.uregion import URegion
from repro.workloads.regions import regular_polygon


@pytest.mark.parametrize("sides", [8, 32, 128])
def test_fig6_uregion_validation(benchmark, sides):
    """Construction + sampled validation cost vs moving-segment count."""
    r0 = regular_polygon((0.0, 0.0), 10.0, sides)
    r1 = regular_polygon((5.0, 2.0), 14.0, sides)

    def build():
        return URegion.between_regions(0.0, r0, 10.0, r1, validate="fast")

    u = benchmark(build)
    assert len(u.msegs()) == sides


@pytest.mark.parametrize("sides", [8, 32])
def test_fig6_full_validation(benchmark, sides):
    """The exact pairwise crossing analysis (validate='full')."""
    r0 = regular_polygon((0.0, 0.0), 10.0, sides)
    r1 = regular_polygon((5.0, 2.0), 14.0, sides)

    def build():
        return URegion.between_regions(0.0, r0, 10.0, r1, validate="full")

    u = benchmark(build)
    assert len(u.msegs()) == sides


@pytest.mark.parametrize("sides", [8, 64])
def test_fig6_endpoint_cleanup(benchmark, sides):
    """ι_e with a full collapse: the figure's cone-to-apex degeneracy."""
    r0 = regular_polygon((0.0, 0.0), 10.0, sides)
    u = collapse_to_point(0.0, r0, 10.0, (0.0, 0.0))

    def evaluate_end():
        return u.value_at(10.0)

    end = benchmark(evaluate_end)
    assert end == Region()
    mid = u.value_at(5.0)
    report(
        f"Figure 6 collapse (sides={sides})",
        [(f"{r0.area():.2f}", f"{mid.area():.2f}", f"{end.area():.2f}")],
        ("area t=0", "area t=5", "area t=10 (cleanup)"),
    )


def test_fig6_interior_evaluation(benchmark):
    """Interior ι over a multi-unit moving region (the common hot path)."""
    mr = translating_mregion(units=20, sides=16)
    t0, t1 = mr.start_time(), mr.end_time()
    times = [t0 + (t1 - t0) * k / 50.0 for k in range(51)]

    def evaluate_all():
        return [mr.value_at(t) for t in times]

    snapshots = benchmark(evaluate_all)
    assert all(s is not None and s.area() > 0 for s in snapshots[:-1])
