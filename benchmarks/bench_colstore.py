"""V6: persistent column store — the cold start without the rebuild.

Claim under test: with a populated ``--colstore`` directory, a cold
process's first whole-fleet snapshot (validate manifest, memmap the
column files, run the kernel) lands within 2× of a fully warm snapshot
(column already resident), while the pre-store cold path — rebuilding
the columns from the tuple-store rows — costs a large multiple of
either.  The counters prove which path ran: the cold-with-store run
must show ``colstore.hits ≥ 1`` and ``colstore.rebuilds == 0``, and
answers stay bit-identical across the scalar, vector, and parallel
backends whether columns came from disk or a fresh transcription.

Runs both as pytest (equivalence + counters asserted; the quick
``smoke`` test is wired into scripts/check.sh) and as a script:
``python benchmarks/bench_colstore.py --json BENCH_colstore.json``.
"""

import json
import shutil
import tempfile
import time

import numpy as np

from bench_vector import build_fleet
from repro import obs
from repro.vector.cache import Fleet, clear_cache, column_for
from repro.vector.columns import UPointColumn
from repro.vector.fleet import fleet_atinstant
from repro.vector.kernels import atinstant_batch
from repro.vector.store import ColumnStore, clear_store, set_store

FLEET_SIZE = 100_000
T = 60.0


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        tic = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tic)
    return best


def _populate(root, mappings):
    """Prime the store the way a previous process would have: build the
    columns through the cache with the store active."""
    set_store(root)
    fleet = Fleet(mappings)
    clear_cache()
    column_for(fleet, "upoint")
    clear_cache()
    clear_store()
    return ColumnStore(root)


def _simulate_cold_process(root, mappings):
    """A fresh process's state: store configured, nothing resident."""
    set_store(root)  # resets the store→fleet binding too
    clear_cache()
    return Fleet(mappings)


def measure_cold_start(mappings, root) -> dict:
    """Cold-with-store vs warm vs the killed rebuild path, end to end."""
    store = _populate(root, mappings)

    # The old cold start: transcribe the rows into a column, every time.
    rebuild_s = _best_of(
        lambda: fleet_atinstant(list(mappings), T, backend="vector")
    )

    # The new cold start: first query of a fresh process, store active.
    def cold():
        fleet = _simulate_cold_process(root, mappings)
        return fleet_atinstant(fleet, T, backend="vector")

    with obs.capture() as counters:
        cold_result = cold()
        cold_counters = counters.snapshot()["counters"]
    cold_s = _best_of(cold)

    # Fully warm: same fleet, column cached from the previous query.
    fleet = _simulate_cold_process(root, mappings)
    fleet_atinstant(fleet, T, backend="vector")  # prime
    warm_s = _best_of(lambda: fleet_atinstant(fleet, T, backend="vector"))

    # Bit-identical answers: mmap-fed kernel vs fresh transcription.
    built = UPointColumn.from_mappings(mappings)
    loaded = store.load("upoint")
    bx, by, bd = atinstant_batch(built, T)
    lx, ly, ld = atinstant_batch(loaded, T)
    kernel_mismatches = (
        int(np.count_nonzero(bd != ld))
        + int(np.count_nonzero(bx[bd & ld] != lx[bd & ld]))
        + int(np.count_nonzero(by[bd & ld] != ly[bd & ld]))
    )

    clear_cache()
    clear_store()
    return {
        "objects": len(mappings),
        "cold_rebuild_s": rebuild_s,
        "cold_mmap_s": cold_s,
        "warm_s": warm_s,
        "cold_vs_warm_ratio": cold_s / warm_s,
        "cold_within_2x_warm": cold_s <= 2.0 * warm_s,
        "rebuild_vs_mmap_speedup": rebuild_s / cold_s,
        "cold_counters": {
            "colstore.hits": cold_counters.get("colstore.hits", 0),
            "colstore.rebuilds": cold_counters.get("colstore.rebuilds", 0),
            "colstore.validations": cold_counters.get(
                "colstore.validations", 0
            ),
            "colstore.bytes_mapped": cold_counters.get(
                "colstore.bytes_mapped", 0
            ),
        },
        "kernel_mismatches": kernel_mismatches,
        "cold_result_len": len(cold_result),
    }


def measure_backend_parity(mappings, root) -> dict:
    """Same snapshot under all three backends, store active for the
    columnar two; exact float equality, no tolerance."""
    _populate(root, mappings)
    scalar = fleet_atinstant(list(mappings), T, backend="scalar")
    mismatches = {}
    for backend in ("vector", "parallel"):
        fleet = _simulate_cold_process(root, mappings)
        got = fleet_atinstant(fleet, T, backend=backend)
        bad = 0
        for s, g in zip(scalar, got):
            if (s is None) != (g is None):
                bad += 1
            elif s is not None and (s.x != g.x or s.y != g.y):
                bad += 1
        mismatches[backend] = bad
    clear_cache()
    clear_store()
    return {"objects": len(mappings), "mismatches": mismatches}


def run_all(count: int = FLEET_SIZE) -> dict:
    mappings = build_fleet(count)
    root = tempfile.mkdtemp(prefix="bench_colstore_")
    try:
        obs.enable()
        return {
            "fleet_size": count,
            "cold_start": measure_cold_start(mappings, root),
            "backend_parity": measure_backend_parity(mappings, root),
        }
    finally:
        obs.disable()
        shutil.rmtree(root, ignore_errors=True)


# -- pytest entry points ------------------------------------------------------


def test_v6_smoke_cold_start_serves_from_disk():
    """Fast gate for scripts/check.sh: a populated store serves a cold
    process's first query from the memmap (hit, zero rebuilds), answers
    identical to the scalar loop."""
    mappings = build_fleet(300, seed=9)
    root = tempfile.mkdtemp(prefix="smoke_colstore_")
    obs.enable()
    try:
        _populate(root, mappings)
        fleet = _simulate_cold_process(root, mappings)
        with obs.capture() as counters:
            got = fleet_atinstant(fleet, T, backend="vector")
            snap = counters.snapshot()["counters"]
        assert snap.get("colstore.hits", 0) >= 1
        assert snap.get("colstore.rebuilds", 0) == 0
        assert snap.get("colstore.bytes_mapped", 0) > 0
        scalar = fleet_atinstant(list(mappings), T, backend="scalar")
        assert len(got) == len(scalar)
        for s, g in zip(scalar, got):
            if s is None:
                assert g is None
            else:
                assert s.x == g.x and s.y == g.y
    finally:
        clear_cache()
        clear_store()
        obs.disable()
        shutil.rmtree(root, ignore_errors=True)


def test_v6_smoke_corrupt_store_rebuilt_not_served():
    """Bit-flip the stored column: the cold query must rebuild (counted)
    and still answer correctly."""
    from repro.vector.store import HEADER

    mappings = build_fleet(100, seed=9)
    root = tempfile.mkdtemp(prefix="smoke_colstore_")
    obs.enable()
    try:
        store = _populate(root, mappings)
        with open(store.path("upoint.bin"), "r+b") as fh:
            fh.seek(HEADER.size + 1)
            b = fh.read(1)
            fh.seek(HEADER.size + 1)
            fh.write(bytes([b[0] ^ 0xFF]))
        # The cheap tier cannot see a payload flip, but the manifest CRC
        # tier catches structural damage; flip the header too so the
        # cold open rejects it outright.
        with open(store.path("upoint.bin"), "r+b") as fh:
            fh.seek(0)
            fh.write(b"XXXX")
        fleet = _simulate_cold_process(root, mappings)
        with obs.capture() as counters:
            got = fleet_atinstant(fleet, T, backend="vector")
            snap = counters.snapshot()["counters"]
        assert snap.get("colstore.rebuilds", 0) >= 1
        scalar = fleet_atinstant(list(mappings), T, backend="scalar")
        for s, g in zip(scalar, got):
            if s is None:
                assert g is None
            else:
                assert s.x == g.x and s.y == g.y
    finally:
        clear_cache()
        clear_store()
        obs.disable()
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write results to this file")
    parser.add_argument("--objects", type=int, default=FLEET_SIZE)
    args = parser.parse_args()

    results = run_all(args.objects)
    c = results["cold_start"]
    print(
        f"fleet: {c['objects']} objects\n"
        f"cold (rebuild)  {c['cold_rebuild_s'] * 1e3:9.2f} ms   "
        f"(the path this PR kills)\n"
        f"cold (mmap)     {c['cold_mmap_s'] * 1e3:9.2f} ms   "
        f"hits={c['cold_counters']['colstore.hits']} "
        f"rebuilds={c['cold_counters']['colstore.rebuilds']} "
        f"mapped={c['cold_counters']['colstore.bytes_mapped']}B\n"
        f"warm            {c['warm_s'] * 1e3:9.2f} ms\n"
        f"cold/warm ratio {c['cold_vs_warm_ratio']:.2f}x "
        f"(within 2x: {c['cold_within_2x_warm']})   "
        f"rebuild/mmap speedup {c['rebuild_vs_mmap_speedup']:.1f}x   "
        f"kernel mismatches {c['kernel_mismatches']}"
    )
    p = results["backend_parity"]
    print(f"backend parity  mismatches {p['mismatches']}")
    assert c["cold_within_2x_warm"], (
        f"cold start {c['cold_vs_warm_ratio']:.2f}x warm exceeds the 2x bound"
    )
    assert c["cold_counters"]["colstore.rebuilds"] == 0
    assert c["cold_counters"]["colstore.hits"] >= 1
    assert c["kernel_mismatches"] == 0
    assert all(v == 0 for v in p["mismatches"].values())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(results, f, indent=2)
        print(f"wrote {args.json}")
