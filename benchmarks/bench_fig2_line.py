"""F2: Figure 2 — line values as unstructured segment sets.

The figure's point: a polyline-structured curve and a loose segment soup
are both valid line values, and validation only has to reject collinear
overlaps.  The benchmark measures construction+validation cost for both
shapes at increasing sizes and the halfsegment-sequence derivation used
by the Section-4 data structure.
"""

import math

import pytest

from conftest import report
from repro.errors import InvalidValue
from repro.spatial.line import Line


def polyline_vertices(n: int):
    return [(float(k), math.sin(k * 0.7)) for k in range(n + 1)]


def segment_soup(n: int):
    # Rotated spokes: pairwise crossing, never collinear-overlapping.
    out = []
    for k in range(n):
        a = 0.1 + k * math.pi / n
        out.append(((-math.cos(a), -math.sin(a)), (math.cos(a), math.sin(a))))
    return out


@pytest.mark.parametrize("n", [64, 256, 1024])
def test_fig2_polyline_vs_soup(benchmark, n):
    """Validation cost for the figure's two shapes of line value."""
    poly = polyline_vertices(n)
    soup = segment_soup(n)

    def build_both():
        return Line.polyline(poly), Line(soup)

    structured, loose = benchmark(build_both)
    assert len(structured) == n
    assert len(loose) == n
    report(
        f"Figure 2 (n={n})",
        [
            ("polyline", len(structured), f"{structured.length():.2f}"),
            ("segment soup", len(loose), f"{loose.length():.2f}"),
        ],
        ("shape", "#segments", "length"),
    )


def test_fig2_uniqueness_constraint(benchmark):
    """The single line constraint: collinear overlaps are rejected."""
    good = segment_soup(128)
    bad = good + [((-1.0, 0.0), (0.5, 0.0))]  # overlaps the horizontal spoke?

    def attempt():
        Line(good)
        try:
            Line(bad + [((-0.5, 0.0), (1.0, 0.0))])
            return False
        except InvalidValue:
            return True

    rejected = benchmark(attempt)
    assert rejected


@pytest.mark.parametrize("n", [64, 512])
def test_fig2_halfsegment_sequence(benchmark, n):
    """Deriving the ordered halfsegment array of Section 4.1."""
    line = Line(segment_soup(n))

    def halves():
        return line.halfsegments()

    hs = benchmark(halves)
    assert len(hs) == 2 * n
    keys = [h.sort_key() for h in hs]
    assert keys == sorted(keys)
