"""Extension experiments: simplification and overlap area.

Not artifacts of the paper — these benchmark the library's extension
operations so their cost/quality trade-offs are on record next to the
reproduction results.
"""

import math
import random

import pytest

from conftest import report
from repro.spatial.region import Region
from repro.temporal.mapping import MovingPoint, MovingRegion
from repro.temporal.uregion import URegion
from repro.ops.overlap import overlap_area
from repro.ops.simplify import compression_ratio, simplification_error, simplify


def dense_track(samples: int, seed: int = 3) -> MovingPoint:
    rng = random.Random(seed)
    heading = 0.0
    x = y = 0.0
    waypoints = [(0.0, (0.0, 0.0))]
    for t in range(1, samples + 1):
        if t % 50 == 0:
            heading += rng.choice([-1, 1]) * math.pi / 4
        x += 10.0 * math.cos(heading) + rng.uniform(-1, 1)
        y += 10.0 * math.sin(heading) + rng.uniform(-1, 1)
        waypoints.append((float(t), (x, y)))
    return MovingPoint.from_waypoints(waypoints)


@pytest.mark.parametrize("samples", [200, 1000])
def test_simplify_throughput(benchmark, samples):
    """Douglas–Peucker under synchronized distance."""
    track = dense_track(samples)

    def run():
        return simplify(track, 5.0)

    slim = benchmark(run)
    assert simplification_error(track, slim) <= 5.0 + 1e-9
    report(
        f"Simplify (n={samples}, eps=5)",
        [(samples, len(slim), f"{compression_ratio(track, slim):.1f}x")],
        ("samples", "kept units", "compression"),
    )


def test_simplify_quality_curve(benchmark):
    """Compression vs error bound (the quality trade-off on record)."""
    track = dense_track(600)

    def run():
        rows = []
        for eps in (1.0, 5.0, 25.0, 125.0):
            slim = simplify(track, eps)
            rows.append(
                (eps, len(slim), simplification_error(track, slim))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Simplify quality curve (600 samples)",
        [(e, n, f"{err:.2f}") for e, n, err in rows],
        ("epsilon", "units", "max error"),
    )
    units = [n for _e, n, _err in rows]
    assert units == sorted(units, reverse=True)


@pytest.mark.parametrize("sides", [4, 16])
def test_overlap_area_cost(benchmark, sides):
    """Event detection + quadratic fits for the overlap area."""
    from repro.workloads.regions import regular_polygon

    r0 = regular_polygon((-8.0, 0.0), 3.0, sides)
    r1 = regular_polygon((8.0, 0.0), 3.0, sides)
    mr = MovingRegion([URegion.between_regions(0.0, r0, 10.0, r1)])
    fixed = Region.box(-2, -4, 2, 4)

    def run():
        return overlap_area(mr, fixed)

    area = benchmark(run)
    # Sanity: overlap peaks while crossing the fixed strip and is 0 far out.
    assert area.maximum() > 0
    assert area.value_at(0.0).value == pytest.approx(0.0, abs=1e-6)
    assert area.value_at(10.0).value == pytest.approx(0.0, abs=1e-6)
